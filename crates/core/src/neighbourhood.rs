//! The β-clipped neighbourhood view `N_v^C : Q → [β]`.

use std::fmt;

/// What a node sees of its neighbours: for each state, the number of
/// neighbours in that state **clipped at the counting bound β**.
///
/// This is the only view of the world a [`Machine`](crate::Machine) transition
/// ever receives, so the detection restriction of the model is enforced by
/// construction. For non-counting machines (β = 1) every query degenerates to
/// existence.
///
/// # Example
///
/// ```
/// use wam_core::Neighbourhood;
/// let n = Neighbourhood::from_states([1, 1, 1, 2], 2);
/// assert_eq!(n.count(&1), 2);            // 3 neighbours, clipped at β = 2
/// assert_eq!(n.count(&2), 1);
/// assert_eq!(n.count(&9), 0);
/// assert!(n.exists(|&s| s == 2));
/// assert!(n.all(|&s| s >= 1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Neighbourhood<S> {
    /// Distinct states with their clipped counts; nonzero counts only.
    entries: Vec<(S, u32)>,
    beta: u32,
}

impl<S: fmt::Debug> fmt::Debug for Neighbourhood<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Neighbourhood")
            .field("beta", &self.beta)
            .field("entries", &self.entries)
            .finish()
    }
}

impl<S: Clone + Ord> Neighbourhood<S> {
    /// Builds the clipped view from the raw neighbour states.
    ///
    /// Entries are kept sorted, so two views built from the same multiset
    /// compare equal regardless of iteration order — a transition function
    /// receiving a `Neighbourhood` is automatically a function of the
    /// clipped multiset, as the model requires.
    pub fn from_states<I: IntoIterator<Item = S>>(states: I, beta: u32) -> Self {
        assert!(beta >= 1, "counting bound must be at least 1");
        // Sort + run-length encode: O(d log d) over the degree instead of
        // the linear `find` per neighbour (O(d·k)) this used to do — this
        // constructor runs once per node per step on the hottest paths.
        let mut raw: Vec<S> = states.into_iter().collect();
        raw.sort_unstable();
        let mut entries: Vec<(S, u32)> = Vec::new();
        for s in raw {
            match entries.last_mut() {
                Some((t, c)) if *t == s => *c = (*c + 1).min(beta),
                _ => entries.push((s, 1)),
            }
        }
        Neighbourhood { entries, beta }
    }

    /// The least observed state satisfying `pred`, if any. This is the
    /// canonical choice function used by the simulation compilers.
    pub fn min_where(&self, mut pred: impl FnMut(&S) -> bool) -> Option<&S> {
        self.entries.iter().map(|(s, _)| s).find(|s| pred(s))
    }

    /// Builds the clipped view from aggregated per-state counts (clipping
    /// each count at β). Used by symmetry-reduced configuration
    /// representations where raw neighbour lists are never materialised.
    pub fn from_counts<I: IntoIterator<Item = (S, u64)>>(counts: I, beta: u32) -> Self {
        assert!(beta >= 1, "counting bound must be at least 1");
        let mut entries: Vec<(S, u32)> = Vec::new();
        for (s, c) in counts {
            if c == 0 {
                continue;
            }
            let clipped = (c.min(beta as u64)) as u32;
            match entries.iter_mut().find(|(t, _)| *t == s) {
                Some((_, acc)) => *acc = (*acc + clipped).min(beta),
                None => entries.push((s, clipped)),
            }
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Neighbourhood { entries, beta }
    }

    /// The counting bound β of this view.
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// The clipped count of neighbours in state `s`, in `[0, β]`.
    pub fn count(&self, s: &S) -> u32 {
        self.entries
            .iter()
            .find(|(t, _)| t == s)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// The paper's `N[a, b]`-style aggregate: sum of clipped counts over all
    /// states satisfying `pred`, itself clipped at β.
    ///
    /// Note that per the model this is an *under*-approximation of the true
    /// number of such neighbours when individual counts saturate, exactly as
    /// in the paper's definition `N[i] := Σ_q N(q)`.
    pub fn count_where(&self, mut pred: impl FnMut(&S) -> bool) -> u32 {
        let sum: u32 = self
            .entries
            .iter()
            .filter(|(s, _)| pred(s))
            .map(|(_, c)| *c)
            .sum();
        sum.min(self.beta)
    }

    /// Whether some neighbour is in a state satisfying `pred`.
    pub fn exists(&self, mut pred: impl FnMut(&S) -> bool) -> bool {
        self.entries.iter().any(|(s, _)| pred(s))
    }

    /// Whether every neighbour is in a state satisfying `pred`.
    /// (Vacuously true with no neighbours, which cannot happen on connected
    /// graphs with ≥ 3 nodes.)
    pub fn all(&self, mut pred: impl FnMut(&S) -> bool) -> bool {
        self.entries.iter().all(|(s, _)| pred(s))
    }

    /// Whether no neighbour satisfies `pred`.
    pub fn none(&self, pred: impl FnMut(&S) -> bool) -> bool {
        !self.exists(pred)
    }

    /// Iterates over the distinct observed states with their clipped counts.
    pub fn states(&self) -> impl Iterator<Item = (&S, u32)> {
        self.entries.iter().map(|(s, c)| (s, *c))
    }

    /// Number of distinct states observed.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Projects the view through a state map, re-aggregating and re-clipping.
    ///
    /// This is **clip-exact**: for any total function `f`, the projected view
    /// equals the view that would have been computed from the raw neighbour
    /// multiset mapped through `f`. (Proof: for each target state `t`,
    /// `min(Σ_{s∈f⁻¹(t)} min(c_s, β), β) = min(Σ c_s, β)`, because if every
    /// `c_s < β` the inner clips are identities, and otherwise both sides
    /// are β.) Product machines rely on this to hand their components an
    /// honest view.
    pub fn project<T: Clone + Ord>(&self, f: impl Fn(&S) -> T) -> Neighbourhood<T> {
        let mut entries: Vec<(T, u32)> = Vec::new();
        for (s, c) in &self.entries {
            let t = f(s);
            match entries.iter_mut().find(|(u, _)| *u == t) {
                Some((_, acc)) => *acc = (*acc + c).min(self.beta),
                None => entries.push((t, (*c).min(self.beta))),
            }
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Neighbourhood {
            entries,
            beta: self.beta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clipping_at_beta() {
        let n = Neighbourhood::from_states([5, 5, 5, 5], 3);
        assert_eq!(n.count(&5), 3);
        let n1 = Neighbourhood::from_states([5, 5], 1);
        assert_eq!(n1.count(&5), 1);
    }

    #[test]
    fn count_where_aggregates_and_clips() {
        let n = Neighbourhood::from_states([1, 1, 2, 3], 2);
        // counts: 1↦2, 2↦1, 3↦1; states ≥ 2 sum to 2 ≤ β.
        assert_eq!(n.count_where(|&s| s >= 2), 2);
        // all states sum to 4, clipped at β = 2.
        assert_eq!(n.count_where(|_| true), 2);
    }

    #[test]
    fn exists_all_none() {
        let n = Neighbourhood::from_states([1, 2], 1);
        assert!(n.exists(|&s| s == 2));
        assert!(!n.exists(|&s| s == 3));
        assert!(n.all(|&s| s <= 2));
        assert!(!n.all(|&s| s == 1));
        assert!(n.none(|&s| s == 0));
    }

    #[test]
    fn projection_is_clip_exact() {
        // Raw neighbours: (a,0) ×2, (a,1) ×2, (b,0) ×1 with β = 3.
        let raw = [("a", 0), ("a", 0), ("a", 1), ("a", 1), ("b", 0)];
        let n = Neighbourhood::from_states(raw.iter().copied(), 3);
        let p = n.project(|&(x, _)| x);
        let direct = Neighbourhood::from_states(raw.iter().map(|&(x, _)| x), 3);
        assert_eq!(p.count(&"a"), direct.count(&"a"));
        assert_eq!(p.count(&"b"), direct.count(&"b"));
    }

    #[test]
    fn projection_clip_exact_under_saturation() {
        // 4 + 4 neighbours project onto one state; β = 3 saturates both ways.
        let raw: Vec<(u8, u8)> = (0..4)
            .map(|_| (1, 0))
            .chain((0..4).map(|_| (1, 1)))
            .collect();
        let n = Neighbourhood::from_states(raw.iter().copied(), 3);
        let p = n.project(|&(x, _)| x);
        assert_eq!(p.count(&1), 3);
    }

    /// The pre-RLE construction: linear `find` per neighbour, final sort.
    /// Kept verbatim as the reference for the equality pin below.
    fn from_states_linear<S: Clone + Ord>(states: &[S], beta: u32) -> Neighbourhood<S> {
        let mut entries: Vec<(S, u32)> = Vec::new();
        for s in states {
            match entries.iter_mut().find(|(t, _)| t == s) {
                Some((_, c)) => *c = (*c + 1).min(beta),
                None => entries.push((s.clone(), 1)),
            }
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Neighbourhood { entries, beta }
    }

    #[test]
    fn rle_construction_matches_linear_on_permuted_inputs() {
        // The sort+RLE rewrite must be observationally identical to the old
        // construction — same entries, same clipping — on every input
        // order. Walk a deterministic family of multisets and rotations.
        for beta in [1u32, 2, 3, 7] {
            for n in 0..9usize {
                let base: Vec<u8> = (0..n).map(|i| ((i * 5 + 3) % 4) as u8).collect();
                for rot in 0..=n {
                    let mut perm = base.clone();
                    perm.rotate_left(rot % n.max(1));
                    if rot % 2 == 1 {
                        perm.reverse();
                    }
                    let fast = Neighbourhood::from_states(perm.iter().copied(), beta);
                    let slow = from_states_linear(&perm, beta);
                    assert_eq!(fast.entries, slow.entries, "beta={beta} perm={perm:?}");
                    assert_eq!(fast.beta, slow.beta);
                }
            }
        }
    }

    #[test]
    fn distinct_counts_states() {
        let n = Neighbourhood::from_states([1, 1, 2], 4);
        assert_eq!(n.distinct(), 2);
        let mut seen: Vec<(i32, u32)> = n.states().map(|(s, c)| (*s, c)).collect();
        seen.sort();
        assert_eq!(seen, vec![(1, 2), (2, 1)]);
    }
}
