//! Statistical runners for graphs too large for exact exploration.
//!
//! One driver serves every model family: [`run_until_stable`] takes any
//! [`ScheduledSystem`] (plain machines, weak broadcasts, absence detection,
//! population protocols, strong broadcasts) and repeatedly samples scheduler
//! steps until the two-clock stability detector fires, the system hangs, or
//! the budget runs out. [`run_machine_until_stable`] is the plain-machine
//! entry point for *deterministic* schedulers (round-robin, synchronous,
//! sweeps); it drives the same loop through a [`Scheduler`] instead of the
//! system's sampled step. Both share [`drive_until_stable`], which the
//! adversarial runners of `wam-sim` also build on.

use crate::{
    Config, ExclusiveSystem, Machine, Output, ScheduledSystem, Scheduler, Selection, State,
    StepOutcome, Verdict,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wam_graph::Graph;

/// Options controlling [`run_until_stable`].
///
/// A statistical run reports a verdict heuristically, via two clocks:
///
/// * **quiescence** — the configuration itself has not changed for
///   [`window`](StabilityOptions::window) steps while the outputs are in
///   consensus (protocols that go silent once decided exit here), or
/// * **long consensus** — the output vector has been a constant non-neutral
///   consensus for `consensus_factor × window` steps, even though states
///   keep moving (protocols with perpetual silent motion, such as token
///   walks, exit here).
///
/// Both clocks can misfire on adversarially slow protocols; exact verdicts
/// come from the [`decide`](crate::decide) entry point.
#[derive(Debug, Clone, Copy)]
pub struct StabilityOptions {
    /// Hard cap on the number of steps.
    pub max_steps: usize,
    /// Quiescence window (steps without configuration change).
    pub window: usize,
    /// The long-consensus clock fires after `consensus_factor × window`
    /// steps of unchanged output consensus.
    pub consensus_factor: usize,
}

impl Default for StabilityOptions {
    fn default() -> Self {
        StabilityOptions {
            max_steps: 200_000,
            window: 2_000,
            consensus_factor: 10,
        }
    }
}

impl StabilityOptions {
    /// Convenience constructor with the default consensus factor.
    pub fn new(max_steps: usize, window: usize) -> Self {
        StabilityOptions {
            max_steps,
            window,
            consensus_factor: 10,
        }
    }
}

/// Internal two-clock stability tracker shared by the statistical runners in
/// this workspace.
#[derive(Debug, Clone)]
pub struct StabilityClock {
    opts: StabilityOptions,
    last_config_change: usize,
    last_output_change: usize,
    outputs: Vec<Output>,
}

impl StabilityClock {
    /// Starts the clock from the initial output vector.
    pub fn new(opts: StabilityOptions, outputs: Vec<Output>) -> Self {
        StabilityClock {
            opts,
            last_config_change: 0,
            last_output_change: 0,
            outputs,
        }
    }

    /// Records step `t`; `config_changed` says whether the configuration
    /// moved, `outputs` is the post-step output vector.
    pub fn record(&mut self, t: usize, config_changed: bool, outputs: &[Output]) {
        if config_changed {
            self.last_config_change = t + 1;
        }
        if outputs != self.outputs.as_slice() {
            self.last_output_change = t + 1;
            self.outputs = outputs.to_vec();
        }
    }

    /// The step after which the output vector last changed.
    pub fn last_output_change(&self) -> usize {
        self.last_output_change
    }

    /// The stable verdict at step `t`, if either clock has fired.
    pub fn verdict(&self, t: usize) -> Option<(Verdict, usize)> {
        let first = self.outputs[0];
        let consensus = first != Output::Neutral && self.outputs.iter().all(|&o| o == first);
        if !consensus {
            return None;
        }
        let quiescent = t.saturating_sub(self.last_config_change) >= self.opts.window;
        let long_consensus = t.saturating_sub(self.last_output_change)
            >= self.opts.window.saturating_mul(self.opts.consensus_factor);
        if quiescent || long_consensus {
            let v = match first {
                Output::Accept => Verdict::Accepts,
                Output::Reject => Verdict::Rejects,
                Output::Neutral => unreachable!(),
            };
            Some((v, self.last_output_change))
        } else {
            None
        }
    }
}

/// Result of a statistical run, generic over the configuration type of the
/// system that produced it (`Config<S>` for plain machines, the extension
/// crates' configuration types for the other families).
#[derive(Debug, Clone)]
pub struct RunReport<C> {
    /// The heuristic verdict: `Accepts` / `Rejects` if a consensus held for
    /// the whole stability window (or the system hung in consensus),
    /// `NoConsensus` if the step budget ran out or the system hung without
    /// consensus.
    pub verdict: Verdict,
    /// Steps executed before stopping.
    pub steps: usize,
    /// Step at which the final consensus was first reached (if any).
    pub stabilised_at: Option<usize>,
    /// The final configuration.
    pub final_config: C,
}

/// The shared driver loop: repeatedly asks `step` for the next configuration
/// and watches the two-clock stability detector.
///
/// `step(system, config, t)` produces the outcome of step `t`; returning
/// [`StepOutcome::Hung`] declares the configuration frozen forever, which
/// resolves the verdict immediately from its consensus. [`run_until_stable`]
/// supplies sampled steps, [`run_machine_until_stable`] scheduler-driven
/// ones, and `wam-sim`'s adversarial runner picks from enumerated
/// successors; all three share this loop.
pub fn drive_until_stable<Y, F>(system: &Y, opts: StabilityOptions, mut step: F) -> RunReport<Y::C>
where
    Y: ScheduledSystem + ?Sized,
    F: FnMut(&Y, &Y::C, usize) -> StepOutcome<Y::C>,
{
    let mut config = system.initial_config();
    let mut clock = StabilityClock::new(opts, system.outputs(&config));
    for t in 0..opts.max_steps {
        if let Some((verdict, since)) = clock.verdict(t) {
            return RunReport {
                verdict,
                steps: t,
                stabilised_at: Some(since),
                final_config: config,
            };
        }
        match step(system, &config, t) {
            StepOutcome::Stepped(next) => {
                let changed = next != config;
                if changed {
                    config = next;
                }
                let outputs = system.outputs(&config);
                clock.record(t, changed, &outputs);
            }
            StepOutcome::Hung => {
                let verdict = match system.consensus(&config) {
                    Some(Output::Accept) => Verdict::Accepts,
                    Some(Output::Reject) => Verdict::Rejects,
                    _ => Verdict::NoConsensus,
                };
                return RunReport {
                    verdict,
                    steps: t,
                    stabilised_at: verdict.decided().map(|_| clock.last_output_change()),
                    final_config: config,
                };
            }
        }
    }
    RunReport {
        verdict: Verdict::NoConsensus,
        steps: opts.max_steps,
        stabilised_at: None,
        final_config: config,
    }
}

/// Runs any [`ScheduledSystem`] under its natural seeded random scheduler
/// until the output vector is in consensus and unchanged for
/// [`StabilityOptions::window`] steps, or until `max_steps`.
///
/// This verdict is heuristic (a longer run could still change it); exact
/// verdicts on small graphs come from the [`decide`](crate::decide)
/// entry point. Use this for scaling experiments.
pub fn run_until_stable<Y: ScheduledSystem + ?Sized>(
    system: &Y,
    seed: u64,
    opts: StabilityOptions,
) -> RunReport<Y::C> {
    let mut rng = StdRng::seed_from_u64(seed);
    drive_until_stable(system, opts, move |sys, c, _t| {
        sys.sampled_step(c, &mut rng)
    })
}

/// Runs `machine` on `graph` under an explicit [`Scheduler`] until stable.
///
/// This is the plain-machine entry point for deterministic fair schedules
/// (round-robin, synchronous, the sweeps and starvation adversaries of
/// `wam-sim`). For seeded random runs — of this or any other model family —
/// prefer [`run_until_stable`] on the corresponding system.
pub fn run_machine_until_stable<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    scheduler: &mut dyn Scheduler,
    opts: StabilityOptions,
) -> RunReport<Config<S>> {
    let system = ExclusiveSystem::new(machine, graph);
    drive_until_stable(&system, opts, |sys, c, t| {
        let sel = scheduler.next_selection(sys.graph(), t);
        StepOutcome::Stepped(c.successor(sys.machine(), sys.graph(), &sel))
    })
}

/// Runs `machine` for exactly `steps` steps under `scheduler` and returns the
/// visited configurations `C₀ … C_steps` (inclusive).
pub fn run_schedule<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    scheduler: &mut dyn Scheduler,
    steps: usize,
) -> Vec<Config<S>> {
    let mut out = Vec::with_capacity(steps + 1);
    let mut config = Config::initial(machine, graph);
    out.push(config.clone());
    for t in 0..steps {
        let sel: Selection = scheduler.next_selection(graph, t);
        config = config.successor(machine, graph, &sel);
        out.push(config.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        LiberalSystem, Machine, Output, RandomScheduler, RoundRobinScheduler, SynchronousScheduler,
    };
    use wam_graph::{generators, LabelCount};

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn flood_stabilises_accepting() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![9, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let r = run_until_stable(&sys, 11, StabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Accepts);
        assert!(r.stabilised_at.is_some());
    }

    #[test]
    fn generic_driver_matches_machine_driver_on_random_runs() {
        // The sampled step of `ExclusiveSystem` replicates the draw stream of
        // `RandomScheduler::exclusive`, so the two entry points agree run for
        // run, step for step.
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![9, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        for seed in 0..8 {
            let generic = run_until_stable(&sys, seed, StabilityOptions::default());
            let mut sched = RandomScheduler::exclusive(seed);
            let classic = run_machine_until_stable(&m, &g, &mut sched, StabilityOptions::default());
            assert_eq!(generic.verdict, classic.verdict);
            assert_eq!(generic.steps, classic.steps);
            assert_eq!(generic.stabilised_at, classic.stabilised_at);
            assert_eq!(generic.final_config, classic.final_config);
        }
    }

    #[test]
    fn liberal_system_runs_to_acceptance() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![5, 1]));
        let m = flood();
        let sys = LiberalSystem::new(&m, &g);
        let r = run_until_stable(&sys, 3, StabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Accepts);
    }

    #[test]
    fn flood_stabilises_rejecting_without_label() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![6, 0]));
        let mut sched = RoundRobinScheduler;
        let r = run_machine_until_stable(&flood(), &g, &mut sched, StabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Rejects);
        // Already rejecting at the start.
        assert_eq!(r.stabilised_at, Some(0));
    }

    #[test]
    fn budget_exhaustion_reports_no_consensus() {
        let m = Machine::new(1, |_| 0u64, |&s, _| s + 1, |_| Output::Neutral);
        let g = generators::cycle(3);
        let mut sched = SynchronousScheduler;
        let r = run_machine_until_stable(&m, &g, &mut sched, StabilityOptions::new(100, 10));
        assert_eq!(r.verdict, Verdict::NoConsensus);
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn hung_system_resolves_verdict_from_consensus() {
        // A driver step that immediately hangs resolves the verdict from the
        // initial configuration: flood on an unlabelled cycle starts (and
        // stays) all-rejecting.
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 0]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let r = drive_until_stable(&sys, StabilityOptions::default(), |_, _, _| {
            StepOutcome::Hung
        });
        assert_eq!(r.verdict, Verdict::Rejects);
        assert_eq!(r.steps, 0);
        assert_eq!(r.stabilised_at, Some(0));

        // With a labelled node the initial outputs disagree: no consensus.
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        let sys = ExclusiveSystem::new(&m, &g);
        let r = drive_until_stable(&sys, StabilityOptions::default(), |_, _, _| {
            StepOutcome::Hung
        });
        assert_eq!(r.verdict, Verdict::NoConsensus);
        assert_eq!(r.stabilised_at, None);
    }

    #[test]
    fn run_schedule_records_all_configs() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 1]));
        let mut sched = SynchronousScheduler;
        let configs = run_schedule(&flood(), &g, &mut sched, 3);
        assert_eq!(configs.len(), 4);
        // Synchronous flooding on the 3-line finishes in 2 steps.
        assert!(configs[2].is_accepting(&flood()));
    }
}
