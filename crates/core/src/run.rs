//! Statistical runners for graphs too large for exact exploration.

use crate::{Config, Machine, Output, Scheduler, Selection, State, Verdict};
use wam_graph::Graph;

/// Options controlling [`run_until_stable`].
///
/// A statistical run reports a verdict heuristically, via two clocks:
///
/// * **quiescence** — the configuration itself has not changed for
///   [`window`](StabilityOptions::window) steps while the outputs are in
///   consensus (protocols that go silent once decided exit here), or
/// * **long consensus** — the output vector has been a constant non-neutral
///   consensus for `consensus_factor × window` steps, even though states
///   keep moving (protocols with perpetual silent motion, such as token
///   walks, exit here).
///
/// Both clocks can misfire on adversarially slow protocols; exact verdicts
/// come from the deciders in [`crate::explore`].
#[derive(Debug, Clone, Copy)]
pub struct StabilityOptions {
    /// Hard cap on the number of steps.
    pub max_steps: usize,
    /// Quiescence window (steps without configuration change).
    pub window: usize,
    /// The long-consensus clock fires after `consensus_factor × window`
    /// steps of unchanged output consensus.
    pub consensus_factor: usize,
}

impl Default for StabilityOptions {
    fn default() -> Self {
        StabilityOptions {
            max_steps: 200_000,
            window: 2_000,
            consensus_factor: 10,
        }
    }
}

impl StabilityOptions {
    /// Convenience constructor with the default consensus factor.
    pub fn new(max_steps: usize, window: usize) -> Self {
        StabilityOptions {
            max_steps,
            window,
            consensus_factor: 10,
        }
    }
}

/// Internal two-clock stability tracker shared by the statistical runners in
/// this workspace.
#[derive(Debug, Clone)]
pub struct StabilityClock {
    opts: StabilityOptions,
    last_config_change: usize,
    last_output_change: usize,
    outputs: Vec<Output>,
}

impl StabilityClock {
    /// Starts the clock from the initial output vector.
    pub fn new(opts: StabilityOptions, outputs: Vec<Output>) -> Self {
        StabilityClock {
            opts,
            last_config_change: 0,
            last_output_change: 0,
            outputs,
        }
    }

    /// Records step `t`; `config_changed` says whether the configuration
    /// moved, `outputs` is the post-step output vector.
    pub fn record(&mut self, t: usize, config_changed: bool, outputs: &[Output]) {
        if config_changed {
            self.last_config_change = t + 1;
        }
        if outputs != self.outputs.as_slice() {
            self.last_output_change = t + 1;
            self.outputs = outputs.to_vec();
        }
    }

    /// The stable verdict at step `t`, if either clock has fired.
    pub fn verdict(&self, t: usize) -> Option<(Verdict, usize)> {
        let first = self.outputs[0];
        let consensus = first != Output::Neutral && self.outputs.iter().all(|&o| o == first);
        if !consensus {
            return None;
        }
        let quiescent = t.saturating_sub(self.last_config_change) >= self.opts.window;
        let long_consensus = t.saturating_sub(self.last_output_change)
            >= self.opts.window.saturating_mul(self.opts.consensus_factor);
        if quiescent || long_consensus {
            let v = match first {
                Output::Accept => Verdict::Accepts,
                Output::Reject => Verdict::Rejects,
                Output::Neutral => unreachable!(),
            };
            Some((v, self.last_output_change))
        } else {
            None
        }
    }
}

/// Result of a statistical run.
#[derive(Debug, Clone)]
pub struct RunReport<S> {
    /// The heuristic verdict: `Accepts` / `Rejects` if a consensus held for
    /// the whole stability window, `NoConsensus` if the step budget ran out.
    pub verdict: Verdict,
    /// Steps executed before stopping.
    pub steps: usize,
    /// Step at which the final consensus was first reached (if any).
    pub stabilised_at: Option<usize>,
    /// The final configuration.
    pub final_config: Config<S>,
}

/// Runs `machine` on `graph` under `scheduler` until the output vector is in
/// consensus and unchanged for [`StabilityOptions::window`] steps, or until
/// `max_steps`.
///
/// This verdict is heuristic (a longer run could still change it); exact
/// verdicts on small graphs come from [`crate::decide_pseudo_stochastic`]
/// and friends. Use this for scaling experiments.
pub fn run_until_stable<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    scheduler: &mut dyn Scheduler,
    opts: StabilityOptions,
) -> RunReport<S> {
    let mut config = Config::initial(machine, graph);
    let outputs: Vec<Output> = config.states().iter().map(|s| machine.output(s)).collect();
    let mut clock = StabilityClock::new(opts, outputs);
    for t in 0..opts.max_steps {
        if let Some((verdict, since)) = clock.verdict(t) {
            return RunReport {
                verdict,
                steps: t,
                stabilised_at: Some(since),
                final_config: config,
            };
        }
        let sel = scheduler.next_selection(graph, t);
        let next = config.successor(machine, graph, &sel);
        let changed = next != config;
        if changed {
            config = next;
        }
        let outputs: Vec<Output> = config.states().iter().map(|s| machine.output(s)).collect();
        clock.record(t, changed, &outputs);
    }
    RunReport {
        verdict: Verdict::NoConsensus,
        steps: opts.max_steps,
        stabilised_at: None,
        final_config: config,
    }
}

/// Runs `machine` for exactly `steps` steps under `scheduler` and returns the
/// visited configurations `C₀ … C_steps` (inclusive).
pub fn run_schedule<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    scheduler: &mut dyn Scheduler,
    steps: usize,
) -> Vec<Config<S>> {
    let mut out = Vec::with_capacity(steps + 1);
    let mut config = Config::initial(machine, graph);
    out.push(config.clone());
    for t in 0..steps {
        let sel: Selection = scheduler.next_selection(graph, t);
        config = config.successor(machine, graph, &sel);
        out.push(config.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output, RandomScheduler, RoundRobinScheduler, SynchronousScheduler};
    use wam_graph::{generators, LabelCount};

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn flood_stabilises_accepting() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![9, 1]));
        let mut sched = RandomScheduler::exclusive(11);
        let r = run_until_stable(&flood(), &g, &mut sched, StabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Accepts);
        assert!(r.stabilised_at.is_some());
    }

    #[test]
    fn flood_stabilises_rejecting_without_label() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![6, 0]));
        let mut sched = RoundRobinScheduler;
        let r = run_until_stable(&flood(), &g, &mut sched, StabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Rejects);
        // Already rejecting at the start.
        assert_eq!(r.stabilised_at, Some(0));
    }

    #[test]
    fn budget_exhaustion_reports_no_consensus() {
        let m = Machine::new(1, |_| 0u64, |&s, _| s + 1, |_| Output::Neutral);
        let g = generators::cycle(3);
        let mut sched = SynchronousScheduler;
        let r = run_until_stable(&m, &g, &mut sched, StabilityOptions::new(100, 10));
        assert_eq!(r.verdict, Verdict::NoConsensus);
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn run_schedule_records_all_configs() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 1]));
        let mut sched = SynchronousScheduler;
        let configs = run_schedule(&flood(), &g, &mut sched, 3);
        assert_eq!(configs.len(), 4);
        // Synchronous flooding on the 3-line finishes in 2 steps.
        assert!(configs[2].is_accepting(&flood()));
    }
}
