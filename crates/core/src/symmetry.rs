//! Orbit-quotient exploration: symmetry reduction of configuration spaces
//! under graph automorphisms.
//!
//! # Soundness
//!
//! Let `G` be a communication graph and `π` a *structural* automorphism of
//! `G` (labels need not be preserved — see below). A permutation of nodes
//! acts on configurations by `(π · c)(v) = c(π(v))` (see
//! [`PermuteNodes::permute`]). Every model family in this reproduction has
//! **node-anonymous** transition rules: a node's step depends only on its
//! own state and the (β-clipped) multiset of neighbour states, never on
//! node identities. Since `π` maps neighbourhoods to neighbourhoods, the
//! one-step successor relation is *equivariant*:
//! `succ(π · c) = π · succ(c)` — and acceptance/rejection ("all nodes
//! accept/reject") is orbit-invariant. Consequently, for the reachability
//! set from a start configuration `c₀`,
//! `Reach(π · c₀) = π · Reach(c₀)`, and the reach graph from `c₀` modulo
//! the group `Γ = Aut(G)` is exactly the orbit quotient: exploring one
//! lexicographically least representative per orbit preserves the
//! existence of stably accepting / stably rejecting reachable
//! configurations, hence the [`Verdict`].
//!
//! Two subtleties the implementation enforces:
//!
//! * **The element list must be a group.** Representatives are defined as
//!   orbit minima; if the enumeration of `Aut(G)` were truncated, the
//!   "minimum" would not be orbit-invariant and states would be conflated
//!   or duplicated unsoundly. [`QuotientSystem::new`] therefore rejects
//!   incomplete groups, and `wam-graph` returns the *trivial* group (no
//!   reduction) rather than a truncated list when its cap is hit.
//! * **Labels only seed the initial configuration.** δ₀ reads labels, δ
//!   does not — so the quotient uses the full *structural* group even on
//!   graphs whose labelling is asymmetric. The argument above quotients
//!   the reach set *of the concrete `c₀`*, which is closed under nothing
//!   but the step relation; equivariance of `succ` alone makes
//!   `min`-canonicalising every discovered configuration sound, whether or
//!   not `π · c₀ = c₀`. (A rotated run explores the rotated space — same
//!   verdict either way.)
//!
//! Equivariance itself is asserted empirically: a debug check at
//! construction ([`QuotientSystem::check_equivariance`]) plus the
//! differential suite in `tests/symmetry_differential.rs`, which replays
//! random machines over random graphs through all six model families with
//! and without reduction and compares verdicts.

use crate::explore::{ExploreError, Symmetry};
use crate::{
    Config, ExclusiveSystem, Exploration, ExploreOptions, LiberalSystem, State, TransitionSystem,
    Verdict,
};
use wam_graph::{automorphism_group, AutomorphismGroup, Graph};

/// Configurations a node permutation acts on.
///
/// `Ord` supplies the canonical orbit representative (the minimum of the
/// orbit); the particular order is irrelevant as long as it is total.
pub trait PermuteNodes: Clone + Ord {
    /// The action `(π · c)(v) = c(π(v))`: node `v` of the result holds what
    /// node `perm[v]` held before.
    fn permute(&self, perm: &[u32]) -> Self;

    /// The lexicographically least configuration in the orbit of `self`
    /// under the given permutations (which must include the identity's
    /// effect implicitly: `self` itself is always a candidate).
    fn min_under(self, perms: &[Vec<u32>]) -> Self {
        let mut best: Option<&Vec<u32>> = None;
        for p in perms {
            let candidate_is_less = {
                let current = |v: usize| match best {
                    Some(b) => self.permuted_entry(b, v),
                    None => self.permuted_entry_id(v),
                };
                (0..self.node_count_for_permute())
                    .map(|v| self.permuted_entry(p, v).cmp(current(v)))
                    .find(|o| *o != std::cmp::Ordering::Equal)
                    == Some(std::cmp::Ordering::Less)
            };
            if candidate_is_less {
                best = Some(p);
            }
        }
        match best {
            None => self,
            Some(p) => self.permute(p),
        }
    }

    /// Entry `v` of `π · self` (used by the default `min_under` to compare
    /// permuted configurations without materialising them).
    fn permuted_entry(&self, perm: &[u32], v: usize) -> &Self::Entry;

    /// Entry `v` of `self` (the identity view).
    fn permuted_entry_id(&self, v: usize) -> &Self::Entry;

    /// Number of entries `min_under` compares.
    fn node_count_for_permute(&self) -> usize;

    /// The per-node entry type compared by `min_under`.
    type Entry: Ord + ?Sized;
}

impl<S: State> PermuteNodes for Config<S> {
    type Entry = S;

    fn permute(&self, perm: &[u32]) -> Self {
        Config::from_states(
            perm.iter()
                .map(|&u| self.state(u as usize).clone())
                .collect(),
        )
    }

    fn permuted_entry(&self, perm: &[u32], v: usize) -> &S {
        self.state(perm[v] as usize)
    }

    fn permuted_entry_id(&self, v: usize) -> &S {
        self.state(v)
    }

    fn node_count_for_permute(&self) -> usize {
        self.len()
    }
}

/// A transition system whose step relation commutes with the automorphisms
/// of a communication graph.
///
/// # Contract
///
/// Implementors guarantee, for every structural automorphism `π` of
/// [`symmetry_graph`](NodeSymmetric::symmetry_graph):
///
/// * `successors(π · c)` equals `π · successors(c)` as a *set*, and
/// * `is_accepting` / `is_rejecting` are constant on orbits.
///
/// This holds for any family whose rules are node-anonymous (read own
/// state + neighbour-state multiset only) — all six families of this
/// reproduction. [`QuotientSystem`] spot-checks the contract in debug
/// builds; the differential test suite checks it statistically.
pub trait NodeSymmetric: TransitionSystem {
    /// The communication graph whose automorphisms the step relation
    /// commutes with.
    fn symmetry_graph(&self) -> &Graph;
}

impl<S: State> NodeSymmetric for ExclusiveSystem<'_, S> {
    fn symmetry_graph(&self) -> &Graph {
        self.graph()
    }
}

impl<S: State> NodeSymmetric for LiberalSystem<'_, S> {
    fn symmetry_graph(&self) -> &Graph {
        self.graph()
    }
}

/// The orbit quotient of a [`NodeSymmetric`] transition system: every
/// configuration handed to the exploration engine is first mapped to the
/// lexicographic minimum of its orbit under a (complete) automorphism
/// group, so the engine interns one representative per orbit and the
/// explored space shrinks by up to a factor of the group order.
#[derive(Debug)]
pub struct QuotientSystem<'a, T> {
    inner: &'a T,
    group: AutomorphismGroup,
}

impl<'a, T> QuotientSystem<'a, T>
where
    T: NodeSymmetric,
    T::C: PermuteNodes,
{
    /// Wraps `system`, canonicalising through `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is incomplete (a truncated element list is not
    /// closed under composition, so orbit minima would be ill-defined and
    /// the reduction unsound) or if it acts on the wrong number of nodes.
    /// In debug builds, additionally spot-checks equivariance at the
    /// initial configuration.
    pub fn new(system: &'a T, group: AutomorphismGroup) -> Self {
        assert!(
            group.is_complete(),
            "orbit reduction requires the complete automorphism group: \
             a truncated enumeration is not closed under composition"
        );
        assert_eq!(
            group.node_count(),
            system.symmetry_graph().node_count(),
            "group acts on the wrong node set"
        );
        let q = QuotientSystem {
            inner: system,
            group,
        };
        debug_assert!(
            q.check_equivariance(&system.initial_config()),
            "successor relation is not equivariant under Aut(G): \
             the NodeSymmetric contract is violated"
        );
        q
    }

    /// The automorphism group in use.
    pub fn group(&self) -> &AutomorphismGroup {
        &self.group
    }

    /// The orbit representative (lexicographic minimum) of `c`.
    pub fn canonical(&self, c: T::C) -> T::C {
        c.min_under(self.group.elements())
    }

    /// Verifies `successors(π · c) = π · successors(c)` (as sets) for every
    /// group element `π` — the equivariance half of the [`NodeSymmetric`]
    /// contract, at one configuration.
    pub fn check_equivariance(&self, c: &T::C) -> bool {
        let mut base: Vec<T::C> = self.inner.successors(c);
        base.sort_unstable();
        base.dedup();
        self.group.elements().iter().all(|p| {
            let mut lhs: Vec<T::C> = self.inner.successors(&c.permute(p));
            lhs.sort_unstable();
            lhs.dedup();
            let mut rhs: Vec<T::C> = base.iter().map(|s| s.permute(p)).collect();
            rhs.sort_unstable();
            rhs.dedup();
            lhs == rhs
        })
    }
}

impl<T> TransitionSystem for QuotientSystem<'_, T>
where
    T: NodeSymmetric,
    T::C: PermuteNodes,
{
    type C = T::C;

    fn initial_config(&self) -> T::C {
        self.canonical(self.inner.initial_config())
    }

    fn successors(&self, c: &T::C) -> Vec<T::C> {
        self.inner
            .successors(c)
            .into_iter()
            .map(|s| self.canonical(s))
            .collect()
    }

    fn is_accepting(&self, c: &T::C) -> bool {
        self.inner.is_accepting(c)
    }

    fn is_rejecting(&self, c: &T::C) -> bool {
        self.inner.is_rejecting(c)
    }
}

/// Decides a [`NodeSymmetric`] system under pseudo-stochastic fairness,
/// exploring the orbit quotient of its configuration space when
/// [`ExploreOptions::symmetry`] allows:
///
/// * [`Symmetry::Auto`] — compute the structural automorphism group of the
///   communication graph (capped at [`ExploreOptions::symmetry_cap`]
///   elements); explore the quotient if it is complete and non-trivial,
///   the full space otherwise.
/// * [`Symmetry::On`] — explore through the quotient wrapper even when the
///   group is trivial (the group must still be complete; a capped
///   enumeration falls back to the trivial group, which is complete only
///   in the formal sense of *being* the whole group `{id}` it claims to
///   be — `On` then degenerates to a full exploration through the
///   wrapper).
/// * [`Symmetry::Off`] — explore the full space directly.
///
/// Under reduction, `options.limit` bounds the number of orbit
/// representatives (the quantity actually interned).
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if the explored space exceeds
/// `options.limit`.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` with `Backend::Quotient` (or `wam_certify::Decider`); \
            generic systems can explore a `QuotientSystem` directly"
)]
pub fn decide_symmetric<T>(system: &T, options: ExploreOptions) -> Result<Verdict, ExploreError>
where
    T: NodeSymmetric + Sync,
    T::C: PermuteNodes + Send + Sync,
{
    decide_symmetric_stats(system, options).map(|(verdict, _, _, _)| verdict)
}

/// [`decide_symmetric`]'s engine: additionally reports whether the orbit
/// quotient was explored, how many configurations (or orbit
/// representatives) were interned, and whether the edge relation spilled
/// to disk. Consumed by `wam_core::decide`.
pub(crate) fn decide_symmetric_stats<T>(
    system: &T,
    options: ExploreOptions,
) -> Result<(Verdict, bool, usize, bool), ExploreError>
where
    T: NodeSymmetric + Sync,
    T::C: PermuteNodes + Send + Sync,
{
    if options.symmetry == Symmetry::Off {
        let e = Exploration::explore_with(system, system.initial_config(), options)?;
        return Ok((e.verdict(), false, e.len(), e.was_spilled()));
    }
    let group = automorphism_group(system.symmetry_graph(), options.symmetry_cap);
    let reduce = match options.symmetry {
        Symmetry::Off => unreachable!("handled above"),
        Symmetry::On => true,
        Symmetry::Auto => group.is_complete() && !group.is_trivial(),
    };
    if !reduce {
        let e = Exploration::explore_with(system, system.initial_config(), options)?;
        return Ok((e.verdict(), false, e.len(), e.was_spilled()));
    }
    // A capped enumeration already degraded to the (complete) trivial
    // group, so the assertion in `new` cannot fire here.
    let quotient = QuotientSystem::new(system, group);
    let e = Exploration::explore_with(&quotient, quotient.initial_config(), options)?;
    Ok((e.verdict(), true, e.len(), e.was_spilled()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output};
    use wam_graph::{generators, LabelCount};

    /// "Some node carries label x1", by flag flooding.
    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn permute_acts_on_positions() {
        let c = Config::from_states(vec![10u32, 20, 30]);
        let p = vec![2u32, 0, 1];
        assert_eq!(c.permute(&p).states(), &[30, 10, 20]);
    }

    #[test]
    fn min_under_picks_orbit_minimum() {
        let c = Config::from_states(vec![2u32, 0, 1]);
        let g = generators::cycle(3);
        let aut = automorphism_group(&g, 100);
        let m = c.clone().min_under(aut.elements());
        assert_eq!(m.states(), &[0, 1, 2]);
        // Idempotent, and invariant across the orbit.
        assert_eq!(m.clone().min_under(aut.elements()), m);
        for p in aut.elements() {
            assert_eq!(c.permute(p).min_under(aut.elements()), m);
        }
    }

    #[test]
    fn quotient_shrinks_space_and_preserves_verdict() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![5, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let full = Exploration::explore(&sys, 100_000).unwrap();
        let aut = automorphism_group(&g, 1000);
        assert_eq!(aut.order(), 12);
        let q = QuotientSystem::new(&sys, aut);
        let reduced = Exploration::explore_from(&q, q.initial_config(), 100_000).unwrap();
        assert!(reduced.len() < full.len());
        assert_eq!(reduced.verdict(), full.verdict());
    }

    #[test]
    fn equivariance_check_passes_for_exclusive_and_liberal() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 2]));
        let m = flood();
        let aut = automorphism_group(&g, 1000);
        let ex = ExclusiveSystem::new(&m, &g);
        let qe = QuotientSystem::new(&ex, aut.clone());
        assert!(qe.check_equivariance(&ex.initial_config()));
        let li = LiberalSystem::new(&m, &g);
        let ql = QuotientSystem::new(&li, aut);
        assert!(ql.check_equivariance(&li.initial_config()));
        assert_eq!(
            Exploration::explore_from(&qe, qe.initial_config(), 100_000)
                .unwrap()
                .verdict(),
            Exploration::explore_from(&ql, ql.initial_config(), 100_000)
                .unwrap()
                .verdict()
        );
    }

    #[test]
    #[should_panic(expected = "complete automorphism group")]
    fn quotient_rejects_truncated_groups() {
        let g = generators::clique(8);
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let aut = automorphism_group(&g, 10); // 8! ≫ 10 → truncated
                                              // Sneak past the fallback by lying about completeness is impossible
                                              // from outside the crate; here we check the constructor's guard on
                                              // the honest incomplete marker.
        let _ = QuotientSystem::new(&sys, aut);
    }

    #[test]
    fn decide_symmetric_matches_full_exploration_on_all_policies() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 2]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let expected = Exploration::explore(&sys, 1_000_000).unwrap().verdict();
        for symmetry in [Symmetry::Auto, Symmetry::On, Symmetry::Off] {
            let options = ExploreOptions::default().symmetry(symmetry);
            let (verdict, reduced, explored, spilled) =
                decide_symmetric_stats(&sys, options).unwrap();
            assert_eq!(verdict, expected);
            assert_eq!(reduced, symmetry != Symmetry::Off);
            assert!(explored > 0);
            assert!(!spilled, "no budget set, so nothing should spill");
        }
    }
}
