//! The scheduled-run view of a transition system: the one interface every
//! statistical runner, adversary, batch sweep and trace recorder drives.
//!
//! PR 2 unified the *exact* layer — every exhaustive decider funnels through
//! [`TransitionSystem`] and the interned [`Exploration`](crate::Exploration)
//! engine. [`ScheduledSystem`] does the same for the *run-time* layer: it
//! extends `TransitionSystem` with
//!
//! * a **per-node output view** ([`outputs`](ScheduledSystem::outputs) /
//!   [`consensus`](ScheduledSystem::consensus)), which the two-clock
//!   stability detector of [`run_until_stable`](crate::run_until_stable)
//!   watches, and
//! * a **seeded sampled step** ([`sampled_step`](ScheduledSystem::sampled_step)),
//!   one draw from the model family's natural random scheduler (uniform
//!   node for exclusive selection, random independent initiator sets plus
//!   signal attribution for weak broadcasts, random covers for absence
//!   detection, random adjacent ordered pairs for rendez-vous, a uniform
//!   speaker for strong broadcasts).
//!
//! The *enumerate-selections* view is inherited from `TransitionSystem`:
//! [`successors`](TransitionSystem::successors) lists every distinct
//! non-silent one-step choice the scheduler could make, which is what the
//! adversaries of `wam-sim` pick from.
//!
//! `wam-core` implements the trait for the two plain-machine systems
//! ([`ExclusiveSystem`], [`LiberalSystem`]); `wam-extensions` implements it
//! for the broadcast, absence-detection, population and strong-broadcast
//! systems, so one generic driver serves all five model families the paper
//! classifies.

use crate::{ExclusiveSystem, LiberalSystem, Output, State, TransitionSystem};
use rand::rngs::StdRng;
use rand::RngExt;

/// The result of one sampled (or adversarial) scheduler step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome<C> {
    /// The run moved to this configuration. A silent step returns the
    /// predecessor unchanged; the driver detects that by comparison.
    Stepped(C),
    /// No step applies now or ever again (e.g. an absence-detection
    /// configuration without initiators): the configuration is frozen, and
    /// the driver resolves the verdict from its consensus immediately.
    Hung,
}

/// A transition system equipped with the run-time view: per-node outputs
/// plus one seeded sampled scheduler step.
///
/// Implementations must keep the three views consistent:
/// [`sampled_step`](ScheduledSystem::sampled_step) must return (possibly
/// silently) configurations whose non-silent cases are reachable via
/// [`successors`](TransitionSystem::successors), and
/// [`outputs`](ScheduledSystem::outputs) must agree with
/// [`is_accepting`](TransitionSystem::is_accepting) /
/// [`is_rejecting`](TransitionSystem::is_rejecting) (all-accept ⇔ accepting,
/// all-reject ⇔ rejecting).
pub trait ScheduledSystem: TransitionSystem {
    /// Number of agents (the length of every output vector).
    fn node_count(&self) -> usize;

    /// The per-node output classification of a configuration.
    fn outputs(&self, c: &Self::C) -> Vec<Output>;

    /// The consensus output, if every node agrees.
    fn consensus(&self, c: &Self::C) -> Option<Output> {
        let outputs = self.outputs(c);
        let (&first, rest) = outputs.split_first()?;
        rest.iter().all(|&o| o == first).then_some(first)
    }

    /// One step sampled from the model family's natural random scheduler.
    ///
    /// The draw sequence on `rng` is part of each implementation's contract:
    /// seeded runs are reproducible, and the differential suite pins the
    /// streams against the pre-unification runners.
    fn sampled_step(&self, c: &Self::C, rng: &mut StdRng) -> StepOutcome<Self::C>;
}

impl<S: State> ScheduledSystem for ExclusiveSystem<'_, S> {
    fn node_count(&self) -> usize {
        self.graph().node_count()
    }

    fn outputs(&self, c: &Self::C) -> Vec<Output> {
        c.states()
            .iter()
            .map(|s| self.machine().output(s))
            .collect()
    }

    /// One uniformly random node applies δ (one `random_range` draw per
    /// step — the stream of `RandomScheduler::exclusive`).
    fn sampled_step(&self, c: &Self::C, rng: &mut StdRng) -> StepOutcome<Self::C> {
        let v = rng.random_range(0..self.graph().node_count());
        let stepped = c.stepped_state(self.machine(), self.graph(), v);
        if stepped == *c.state(v) {
            return StepOutcome::Stepped(c.clone());
        }
        let mut states = c.states().to_vec();
        states[v] = stepped;
        StepOutcome::Stepped(crate::Config::from_states(states))
    }
}

impl<S: State> ScheduledSystem for LiberalSystem<'_, S> {
    fn node_count(&self) -> usize {
        self.graph().node_count()
    }

    fn outputs(&self, c: &Self::C) -> Vec<Output> {
        c.states()
            .iter()
            .map(|s| self.machine().output(s))
            .collect()
    }

    /// Every node is selected independently with probability ½, redrawing
    /// empty selections (the stream of the liberal `RandomScheduler`); the
    /// selected set applies δ simultaneously against the pre-step view.
    fn sampled_step(&self, c: &Self::C, rng: &mut StdRng) -> StepOutcome<Self::C> {
        let n = self.graph().node_count();
        let sel = loop {
            let nodes: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.5)).collect();
            if !nodes.is_empty() {
                break crate::Selection::from_nodes(nodes);
            }
        };
        StepOutcome::Stepped(c.successor(self.machine(), self.graph(), &sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output, RandomScheduler, Scheduler, SelectionRegime};
    use rand::SeedableRng;
    use wam_graph::{generators, LabelCount};

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn exclusive_sampled_step_matches_random_scheduler_stream() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let mut rng = StdRng::seed_from_u64(9);
        let mut sched = RandomScheduler::exclusive(9);
        let mut via_system = sys.initial_config();
        let mut via_scheduler = sys.initial_config();
        for t in 0..200 {
            match sys.sampled_step(&via_system, &mut rng) {
                StepOutcome::Stepped(next) => via_system = next,
                StepOutcome::Hung => panic!("exclusive systems never hang"),
            }
            let sel = sched.next_selection(&g, t);
            via_scheduler = via_scheduler.successor(&m, &g, &sel);
            assert_eq!(via_system, via_scheduler, "diverged at step {t}");
        }
    }

    #[test]
    fn liberal_sampled_step_matches_random_scheduler_stream() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        let m = flood();
        let sys = LiberalSystem::new(&m, &g);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sched = RandomScheduler::new(SelectionRegime::Liberal, 5);
        let mut via_system = sys.initial_config();
        let mut via_scheduler = sys.initial_config();
        for t in 0..100 {
            match sys.sampled_step(&via_system, &mut rng) {
                StepOutcome::Stepped(next) => via_system = next,
                StepOutcome::Hung => panic!("liberal systems never hang"),
            }
            let sel = sched.next_selection(&g, t);
            via_scheduler = via_scheduler.successor(&m, &g, &sel);
            assert_eq!(via_system, via_scheduler, "diverged at step {t}");
        }
    }

    #[test]
    fn outputs_and_consensus_agree_with_flags() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let c0 = sys.initial_config();
        assert_eq!(sys.outputs(&c0).len(), sys.node_count());
        assert_eq!(sys.consensus(&c0), None);
        let all = crate::Config::from_states(vec![true; 4]);
        assert_eq!(sys.consensus(&all), Some(Output::Accept));
        assert!(sys.is_accepting(&all));
    }
}
