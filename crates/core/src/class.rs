//! The eight model classes `xyz ∈ {d,D} × {a,A} × {f,F}` and the paper's
//! decision-power classification (Figure 1).

use std::fmt;
use std::str::FromStr;

/// Detection capability: can nodes count neighbours up to a bound β > 1?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Detection {
    /// `d`: non-counting (β = 1) — only existence of neighbours in a state.
    NonCounting,
    /// `D`: counting up to some β ≥ 1.
    Counting,
}

/// Acceptance condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Acceptance {
    /// `a`: halting — accepting/rejecting states are absorbing.
    Halting,
    /// `A`: stable consensus — all nodes eventually agree forever.
    StableConsensus,
}

/// Fairness constraint on schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fairness {
    /// `f`: adversarial — every node is selected infinitely often, nothing more.
    Adversarial,
    /// `F`: pseudo-stochastic — every finite selection sequence recurs.
    PseudoStochastic,
}

/// Upper bounds on decidable labelling properties, per the paper's
/// characterisation (Figure 1 middle and right panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PropertyClassBound {
    /// Only ∅ and ℕ^Λ.
    Trivial,
    /// Properties depending only on `⌈L⌉₁` (presence/absence of each label).
    CutoffOne,
    /// Properties depending only on `⌈L⌉_K` for some K.
    Cutoff,
    /// Properties invariant under scalar multiplication (bounded-degree DAf
    /// upper bound; homogeneous thresholds are the proven lower bound).
    InvariantScalarMult,
    /// Labelling properties decidable in nondeterministic log space.
    NL,
    /// Labelling properties decidable in NSPACE(n) — the theoretical maximum
    /// for constant memory per node.
    NSpaceLinear,
}

impl fmt::Display for PropertyClassBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PropertyClassBound::Trivial => "Trivial",
            PropertyClassBound::CutoffOne => "Cutoff(1)",
            PropertyClassBound::Cutoff => "Cutoff",
            PropertyClassBound::InvariantScalarMult => "ISM",
            PropertyClassBound::NL => "NL",
            PropertyClassBound::NSpaceLinear => "NSPACE(n)",
        };
        f.write_str(s)
    }
}

/// One of the eight model classes `xyz`, e.g. `DAf` = counting, stable
/// consensus, adversarial fairness.
///
/// Selection regime is deliberately absent: the paper's starting point
/// (\[16\]) is that liberal / exclusive / synchronous selection does not change
/// decision power, so classes are identified by the remaining three criteria.
///
/// # Example
///
/// ```
/// use wam_core::{ModelClass, PropertyClassBound};
/// let daf: ModelClass = "DAf".parse().unwrap();
/// assert_eq!(daf.to_string(), "DAf");
/// assert_eq!(daf.labelling_power_arbitrary(), PropertyClassBound::CutoffOne);
/// assert_eq!(
///     daf.labelling_power_bounded_degree(),
///     PropertyClassBound::InvariantScalarMult
/// );
/// assert!(ModelClass::DAF.dominates(&daf));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelClass {
    /// Detection component (`d` / `D`).
    pub detection: Detection,
    /// Acceptance component (`a` / `A`).
    pub acceptance: Acceptance,
    /// Fairness component (`f` / `F`).
    pub fairness: Fairness,
}

impl ModelClass {
    /// `daf`: non-counting, halting, adversarial.
    pub const DAF_LOWER: ModelClass = ModelClass::new(
        Detection::NonCounting,
        Acceptance::Halting,
        Fairness::Adversarial,
    );
    /// `DAF`: counting, stable consensus, pseudo-stochastic.
    pub const DAF: ModelClass = ModelClass::new(
        Detection::Counting,
        Acceptance::StableConsensus,
        Fairness::PseudoStochastic,
    );
    /// `DAf`: counting, stable consensus, adversarial.
    pub const DA_F_LOWER: ModelClass = ModelClass::new(
        Detection::Counting,
        Acceptance::StableConsensus,
        Fairness::Adversarial,
    );
    /// `dAF`: non-counting, stable consensus, pseudo-stochastic.
    pub const D_LOWER_AF: ModelClass = ModelClass::new(
        Detection::NonCounting,
        Acceptance::StableConsensus,
        Fairness::PseudoStochastic,
    );
    /// `dAf`: non-counting, stable consensus, adversarial.
    pub const D_LOWER_A_F_LOWER: ModelClass = ModelClass::new(
        Detection::NonCounting,
        Acceptance::StableConsensus,
        Fairness::Adversarial,
    );

    /// Creates a class from its three components.
    pub const fn new(detection: Detection, acceptance: Acceptance, fairness: Fairness) -> Self {
        ModelClass {
            detection,
            acceptance,
            fairness,
        }
    }

    /// All eight classes, in lexicographic `xyz` order.
    pub fn all() -> [ModelClass; 8] {
        let mut out = [ModelClass::DAF; 8];
        let mut i = 0;
        for d in [Detection::NonCounting, Detection::Counting] {
            for a in [Acceptance::Halting, Acceptance::StableConsensus] {
                for f in [Fairness::Adversarial, Fairness::PseudoStochastic] {
                    out[i] = ModelClass::new(d, a, f);
                    i += 1;
                }
            }
        }
        out
    }

    /// The seven equivalence classes of Figure 1 (representatives):
    /// `daf ≡ daF` collapse into one.
    pub fn representatives() -> Vec<ModelClass> {
        ModelClass::all()
            .into_iter()
            .filter(|c| {
                !(c.detection == Detection::NonCounting
                    && c.acceptance == Acceptance::Halting
                    && c.fairness == Fairness::PseudoStochastic)
            })
            .collect()
    }

    /// The canonical representative of this class's equivalence class
    /// (`daF ↦ daf`, all others map to themselves).
    pub fn canonical(self) -> ModelClass {
        if self.detection == Detection::NonCounting && self.acceptance == Acceptance::Halting {
            ModelClass::new(self.detection, self.acceptance, Fairness::Adversarial)
        } else {
            self
        }
    }

    /// Component-wise dominance: `self` has every capability of `other`.
    /// This is a sound under-approximation of the decision-power order.
    pub fn dominates(&self, other: &ModelClass) -> bool {
        self.detection >= other.detection
            && self.acceptance >= other.acceptance
            && self.fairness >= other.fairness
    }

    /// The paper's exact characterisation of decidable labelling properties
    /// on **arbitrary** communication graphs (Figure 1, middle panel).
    pub fn labelling_power_arbitrary(&self) -> PropertyClassBound {
        match (self.acceptance, self.detection, self.fairness) {
            (Acceptance::Halting, _, _) => PropertyClassBound::Trivial,
            (Acceptance::StableConsensus, _, Fairness::Adversarial) => {
                PropertyClassBound::CutoffOne
            }
            (Acceptance::StableConsensus, Detection::NonCounting, Fairness::PseudoStochastic) => {
                PropertyClassBound::Cutoff
            }
            (Acceptance::StableConsensus, Detection::Counting, Fairness::PseudoStochastic) => {
                PropertyClassBound::NL
            }
        }
    }

    /// The paper's characterisation on **bounded-degree** graphs
    /// (Figure 1, right panel). For `DAf` the exact power is open; the paper
    /// proves the ISM upper bound and the homogeneous-threshold lower bound,
    /// so this returns the upper bound.
    pub fn labelling_power_bounded_degree(&self) -> PropertyClassBound {
        match (self.acceptance, self.detection, self.fairness) {
            (Acceptance::Halting, _, _) => PropertyClassBound::Trivial,
            (Acceptance::StableConsensus, Detection::NonCounting, Fairness::Adversarial) => {
                PropertyClassBound::CutoffOne
            }
            (Acceptance::StableConsensus, Detection::Counting, Fairness::Adversarial) => {
                PropertyClassBound::InvariantScalarMult
            }
            (Acceptance::StableConsensus, _, Fairness::PseudoStochastic) => {
                PropertyClassBound::NSpaceLinear
            }
        }
    }

    /// Whether automata of this class can decide majority on arbitrary graphs
    /// (only `DAF` can — Corollary 3.6 plus the Figure 1 characterisation).
    pub fn decides_majority_arbitrary(&self) -> bool {
        self.labelling_power_arbitrary() == PropertyClassBound::NL
    }

    /// Whether automata of this class can decide majority on bounded-degree
    /// graphs (`DAf`, `dAF`, `DAF` — the paper's second headline result).
    pub fn decides_majority_bounded_degree(&self) -> bool {
        matches!(
            self.labelling_power_bounded_degree(),
            PropertyClassBound::InvariantScalarMult
                | PropertyClassBound::NL
                | PropertyClassBound::NSpaceLinear
        )
    }
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.detection {
            Detection::NonCounting => 'd',
            Detection::Counting => 'D',
        };
        let a = match self.acceptance {
            Acceptance::Halting => 'a',
            Acceptance::StableConsensus => 'A',
        };
        let z = match self.fairness {
            Fairness::Adversarial => 'f',
            Fairness::PseudoStochastic => 'F',
        };
        write!(f, "{d}{a}{z}")
    }
}

/// Error parsing a [`ModelClass`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClassError(String);

impl fmt::Display for ParseClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid model class {:?} (expected e.g. \"DAf\")",
            self.0
        )
    }
}

impl std::error::Error for ParseClassError {}

impl FromStr for ModelClass {
    type Err = ParseClassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 3 {
            return Err(ParseClassError(s.to_string()));
        }
        let detection = match chars[0] {
            'd' => Detection::NonCounting,
            'D' => Detection::Counting,
            _ => return Err(ParseClassError(s.to_string())),
        };
        let acceptance = match chars[1] {
            'a' => Acceptance::Halting,
            'A' => Acceptance::StableConsensus,
            _ => return Err(ParseClassError(s.to_string())),
        };
        let fairness = match chars[2] {
            'f' => Fairness::Adversarial,
            'F' => Fairness::PseudoStochastic,
            _ => return Err(ParseClassError(s.to_string())),
        };
        Ok(ModelClass::new(detection, acceptance, fairness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for c in ModelClass::all() {
            let s = c.to_string();
            assert_eq!(s.parse::<ModelClass>().unwrap(), c);
        }
        assert!("xyz".parse::<ModelClass>().is_err());
        assert!("DA".parse::<ModelClass>().is_err());
    }

    #[test]
    fn seven_equivalence_classes() {
        assert_eq!(ModelClass::all().len(), 8);
        assert_eq!(ModelClass::representatives().len(), 7);
        let daf_upper: ModelClass = "daF".parse().unwrap();
        assert_eq!(daf_upper.canonical().to_string(), "daf");
        assert_eq!(ModelClass::DAF.canonical(), ModelClass::DAF);
    }

    #[test]
    fn figure1_middle_panel() {
        let power = |s: &str| s.parse::<ModelClass>().unwrap().labelling_power_arbitrary();
        assert_eq!(power("daf"), PropertyClassBound::Trivial);
        assert_eq!(power("Daf"), PropertyClassBound::Trivial);
        assert_eq!(power("DaF"), PropertyClassBound::Trivial);
        assert_eq!(power("dAf"), PropertyClassBound::CutoffOne);
        assert_eq!(power("DAf"), PropertyClassBound::CutoffOne);
        assert_eq!(power("dAF"), PropertyClassBound::Cutoff);
        assert_eq!(power("DAF"), PropertyClassBound::NL);
    }

    #[test]
    fn figure1_right_panel() {
        let power = |s: &str| {
            s.parse::<ModelClass>()
                .unwrap()
                .labelling_power_bounded_degree()
        };
        assert_eq!(power("daf"), PropertyClassBound::Trivial);
        assert_eq!(power("dAf"), PropertyClassBound::CutoffOne);
        assert_eq!(power("DAf"), PropertyClassBound::InvariantScalarMult);
        assert_eq!(power("dAF"), PropertyClassBound::NSpaceLinear);
        assert_eq!(power("DAF"), PropertyClassBound::NSpaceLinear);
    }

    #[test]
    fn majority_headline_results() {
        let majority_arbitrary: Vec<String> = ModelClass::representatives()
            .into_iter()
            .filter(|c| c.decides_majority_arbitrary())
            .map(|c| c.to_string())
            .collect();
        assert_eq!(majority_arbitrary, vec!["DAF"]);

        let majority_bounded: Vec<String> = ModelClass::representatives()
            .into_iter()
            .filter(|c| c.decides_majority_bounded_degree())
            .map(|c| c.to_string())
            .collect();
        let mut majority_bounded = majority_bounded;
        majority_bounded.sort();
        assert_eq!(majority_bounded, vec!["DAF", "DAf", "dAF"]);
    }

    #[test]
    fn dominance_is_componentwise() {
        let daf: ModelClass = "dAf".parse().unwrap();
        assert!(ModelClass::DAF.dominates(&daf));
        assert!(!daf.dominates(&ModelClass::DAF));
        let da_f: ModelClass = "DAf".parse().unwrap();
        let d_af: ModelClass = "dAF".parse().unwrap();
        assert!(!da_f.dominates(&d_af));
        assert!(!d_af.dominates(&da_f));
    }
}
