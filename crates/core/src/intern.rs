//! Hash-consing of configurations into dense `u32` ids.
//!
//! The exploration engine never passes configurations around by value:
//! every configuration is interned exactly once into a dense id, and BFS,
//! lasso detection and the `Pre*` machinery work on ids. The interner is
//! **sharded** — a configuration's FxHash picks one of [`SHARDS`]
//! open-addressing tables — so a whole BFS level can be deduplicated in
//! parallel, one thread per shard, while ids stay dense and deterministic:
//! the parallel level merge assigns ids in first-occurrence arrival order,
//! exactly as item-by-item [`Interner::intern`] calls would, so parallel
//! and sequential exploration produce bit-identical results.
//!
//! Memory layout: each configuration is owned once, in the dense
//! `configs` vector; the shard tables store only `(hash, id)` pairs and
//! resolve collisions by comparing against `configs[id]`. This is roughly
//! half the footprint of the classic `HashMap<Config, usize>` + `Vec<Config>`
//! pair (which clones every configuration into the map key), and the
//! tables stay cache-friendly.

use rayon::prelude::*;
use std::hash::{Hash, Hasher};

/// Number of shards (must be a power of two).
const SHARDS: usize = 32;
const SHARD_BITS: u32 = SHARDS.trailing_zeros();

/// Tag bit marking a provisional id local to an in-progress level merge.
const FRESH_BIT: u32 = 1 << 31;

/// Vacant-slot marker in the shard tables.
const EMPTY: u32 = u32::MAX;

/// The FxHash of a value (the workspace's standard fast hash).
#[inline]
pub(crate) fn fx_hash<C: Hash>(c: &C) -> u64 {
    let mut hasher = rustc_hash::FxHasher::default();
    c.hash(&mut hasher);
    hasher.finish()
}

#[inline]
fn shard_of(hash: u64) -> usize {
    (hash >> (64 - SHARD_BITS)) as usize
}

/// Maps a hash to a table slot: a multiplicative remix so that the probe
/// position is independent of the bits used for shard selection.
#[inline]
fn spread(hash: u64, bits: u32) -> usize {
    (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
}

enum Probe {
    Found(u32),
    Inserted,
}

/// One shard: an open-addressing `(hash, id)` table with linear probing.
/// Configurations themselves live in the interner's dense vector; `eq`
/// closures resolve ids back to configurations for collision checks.
#[derive(Debug, Clone)]
struct RawTable {
    entries: Vec<(u64, u32)>,
    live: usize,
    bits: u32,
}

impl RawTable {
    fn new() -> Self {
        const INITIAL_BITS: u32 = 6;
        RawTable {
            entries: vec![(0, EMPTY); 1 << INITIAL_BITS],
            live: 0,
            bits: INITIAL_BITS,
        }
    }

    /// Finds the id whose entry matches `hash` and `eq`, or inserts
    /// `new_id` into the first vacant probe slot.
    fn find_or_insert(&mut self, hash: u64, new_id: u32, eq: impl Fn(u32) -> bool) -> Probe {
        self.maybe_grow();
        let mask = self.entries.len() - 1;
        let mut idx = spread(hash, self.bits) & mask;
        loop {
            let (h, id) = self.entries[idx];
            if id == EMPTY {
                self.entries[idx] = (hash, new_id);
                self.live += 1;
                return Probe::Inserted;
            }
            if h == hash && eq(id) {
                return Probe::Found(id);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Finds the id matching `hash` and `eq` without inserting.
    fn find(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        let mask = self.entries.len() - 1;
        let mut idx = spread(hash, self.bits) & mask;
        loop {
            let (h, id) = self.entries[idx];
            if id == EMPTY {
                return None;
            }
            if h == hash && eq(id) {
                return Some(id);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Rewrites every provisional (`FRESH_BIT`-tagged) id through `f`.
    fn fixup_fresh(&mut self, f: impl Fn(u32) -> u32) {
        for (_, id) in &mut self.entries {
            if *id != EMPTY && *id & FRESH_BIT != 0 {
                *id = f(*id & !FRESH_BIT);
            }
        }
    }

    /// Doubles the table when the load factor would exceed 7/8.
    fn maybe_grow(&mut self) {
        if (self.live + 1) * 8 <= self.entries.len() * 7 {
            return;
        }
        let bits = self.bits + 1;
        let mut next = vec![(0u64, EMPTY); 1 << bits];
        let mask = next.len() - 1;
        for &(h, id) in &self.entries {
            if id == EMPTY {
                continue;
            }
            let mut idx = spread(h, bits) & mask;
            while next[idx].1 != EMPTY {
                idx = (idx + 1) & mask;
            }
            next[idx] = (h, id);
        }
        self.entries = next;
        self.bits = bits;
    }
}

/// A candidate successor flowing through a level merge: its flat position
/// in the level, its hash, the configuration itself (dropped as soon as it
/// turns out to be a duplicate), and the resolved id.
struct Candidate<C> {
    pos: u32,
    hash: u64,
    cfg: Option<C>,
    id: u32,
}

/// Per-shard working state for one level merge.
struct ShardWork<'a, C> {
    table: &'a mut RawTable,
    configs: &'a [C],
    bucket: Vec<Candidate<C>>,
    /// Bucket positions of this shard's fresh configurations, in
    /// first-occurrence order; a fresh candidate's provisional id is its
    /// index in this list, tagged with `FRESH_BIT`.
    fresh: Vec<u32>,
    /// Bucket prefix already deduplicated by earlier [`ShardWork::run`]
    /// calls — the cursor that makes the merge *incremental*, so a level
    /// can be deduplicated batch by batch while later batches are still
    /// being generated (the pipelined merge).
    done: usize,
}

impl<C: Eq> ShardWork<'_, C> {
    /// Deduplicates the shard's bucket (the part arrived since the last
    /// call) against the global table and against itself, assigning
    /// provisional ids to fresh configurations.
    fn run(&mut self) {
        let ShardWork {
            table,
            configs,
            bucket,
            fresh,
            done,
        } = self;
        for i in *done..bucket.len() {
            let hash = bucket[i].hash;
            let tag = FRESH_BIT | fresh.len() as u32;
            let probe = {
                let bucket = &*bucket;
                let fresh = &*fresh;
                table.find_or_insert(hash, tag, |id| {
                    let candidate = bucket[i].cfg.as_ref().expect("candidate still owned");
                    if id & FRESH_BIT != 0 {
                        let pos = fresh[(id & !FRESH_BIT) as usize] as usize;
                        bucket[pos].cfg.as_ref().expect("fresh config owned") == candidate
                    } else {
                        &configs[id as usize] == candidate
                    }
                })
            };
            match probe {
                Probe::Found(id) => {
                    bucket[i].id = id;
                    bucket[i].cfg = None;
                }
                Probe::Inserted => {
                    bucket[i].id = tag;
                    fresh.push(i as u32);
                }
            }
        }
        *done = bucket.len();
    }
}

/// A sharded hash-consing interner: configurations in, dense `u32` ids out.
#[derive(Debug)]
pub struct Interner<C> {
    tables: Vec<RawTable>,
    configs: Vec<C>,
}

impl<C: Eq + Hash> Default for Interner<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Eq + Hash> Interner<C> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            tables: (0..SHARDS).map(|_| RawTable::new()).collect(),
            configs: Vec::new(),
        }
    }

    /// Number of interned configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configuration with dense id `id`.
    pub fn get(&self, id: usize) -> &C {
        &self.configs[id]
    }

    /// All interned configurations, dense by id.
    pub fn configs(&self) -> &[C] {
        &self.configs
    }

    /// The dense id of `c`, if it has been interned.
    pub fn index_of(&self, c: &C) -> Option<usize> {
        let hash = fx_hash(c);
        self.tables[shard_of(hash)]
            .find(hash, |id| &self.configs[id as usize] == c)
            .map(|id| id as usize)
    }

    /// Interns `c`, returning its dense id and whether it was new.
    pub fn intern(&mut self, c: C) -> (u32, bool) {
        let hash = fx_hash(&c);
        let new_id = self.configs.len() as u32;
        assert!(
            new_id < FRESH_BIT,
            "interner overflow: > 2^31 configurations"
        );
        let table = &mut self.tables[shard_of(hash)];
        let configs = &self.configs;
        match table.find_or_insert(hash, new_id, |id| configs[id as usize] == c) {
            Probe::Found(id) => (id, false),
            Probe::Inserted => {
                self.configs.push(c);
                (new_id, true)
            }
        }
    }

    /// Interns one BFS level: `level[k]` is the successor list of the
    /// `k`-th frontier configuration. Returns the id lists aligned with
    /// `level`; fresh configurations are appended to the dense store.
    ///
    /// A convenience wrapper over [`Self::intern_hashed_level`]: hashes
    /// every configuration, merges the flat level, and splits the flat id
    /// vector back into rows.
    pub fn intern_level(&mut self, level: Vec<Vec<C>>, parallel: bool) -> Vec<Vec<u32>>
    where
        C: Send + Sync,
    {
        let lens: Vec<usize> = level.iter().map(Vec::len).collect();
        let flat: Vec<(u64, C)> = level
            .into_iter()
            .flatten()
            .map(|cfg| (fx_hash(&cfg), cfg))
            .collect();
        let ids = self.intern_hashed_level(vec![flat], parallel);
        let mut cursor = 0usize;
        lens.iter()
            .map(|&len| {
                let row = ids[cursor..cursor + len].to_vec();
                cursor += len;
                row
            })
            .collect()
    }

    /// Interns one BFS level whose candidates arrive **pre-hashed** in flat
    /// per-chunk buffers (the exploration engine hashes successors on the
    /// worker threads that generate them, so the single-threaded routing
    /// pass below does no hashing and touches no per-row allocations).
    /// Returns the dense ids of the concatenation of `parts`, in input
    /// order.
    ///
    /// Candidates are routed to their shard and deduplicated per shard —
    /// in parallel when `parallel` is set — then fresh configurations
    /// receive dense ids in first-occurrence order: **exactly the ids
    /// item-by-item [`intern`](Self::intern) calls would assign**. The
    /// parallel exploration engine relies on this equivalence — its
    /// sequential path interns successors directly, with none of the
    /// bucketing machinery, and still produces bit-identical results.
    pub fn intern_hashed_level(&mut self, parts: Vec<Vec<(u64, C)>>, parallel: bool) -> Vec<u32>
    where
        C: Send + Sync,
    {
        let (out, fresh) = {
            let (mut session, _) = self.level_session();
            session.push_parts(parts, parallel);
            session.finish()
        };
        self.append_fresh(fresh);
        out
    }

    /// Opens an **incremental** level merge: candidates can be pushed in
    /// several batches ([`LevelSession::push_parts`]), each deduplicated as
    /// it arrives, and [`LevelSession::finish`] assigns dense ids to the
    /// whole level at once — in first-occurrence flat order across all
    /// batches, exactly as one big [`intern_hashed_level`] call (or an
    /// item-by-item [`intern`](Self::intern) walk) would.
    ///
    /// The second return value is the dense configuration store, readable
    /// while the session is live (the exploration engine's generator
    /// threads read frontier configurations from it while the main thread
    /// merges earlier batches — the pipelined level merge). Fresh
    /// configurations discovered by the session are returned by `finish`
    /// and must be handed back via [`Self::append_fresh`].
    pub(crate) fn level_session(&mut self) -> (LevelSession<'_, C>, &[C]) {
        let Interner { tables, configs } = self;
        let configs: &[C] = configs;
        let works = tables
            .iter_mut()
            .map(|table| ShardWork {
                table,
                configs,
                bucket: Vec::new(),
                fresh: Vec::new(),
                done: 0,
            })
            .collect();
        (LevelSession { works, total: 0 }, configs)
    }

    /// Appends the fresh configurations a [`LevelSession`] discovered (they
    /// arrive in dense-id order from [`LevelSession::finish`]).
    pub(crate) fn append_fresh(&mut self, mut fresh: Vec<C>) {
        self.configs.append(&mut fresh);
    }
}

/// An in-progress incremental level merge (see
/// [`Interner::level_session`]).
pub(crate) struct LevelSession<'a, C> {
    works: Vec<ShardWork<'a, C>>,
    /// Candidates routed so far (the next candidate's flat position).
    total: usize,
}

impl<C: Eq + Hash + Send + Sync> LevelSession<'_, C> {
    /// Routes one batch of pre-hashed candidates to their shards and
    /// deduplicates the new arrivals — in parallel across shards when
    /// `parallel` is set. Flat positions continue across batches.
    pub(crate) fn push_parts(&mut self, parts: Vec<Vec<(u64, C)>>, parallel: bool) {
        let mut pos = self.total as u32;
        for part in parts {
            for (hash, cfg) in part {
                debug_assert_eq!(hash, fx_hash(&cfg), "candidate arrived mis-hashed");
                self.works[shard_of(hash)].bucket.push(Candidate {
                    pos,
                    hash,
                    cfg: Some(cfg),
                    id: 0,
                });
                pos += 1;
            }
        }
        self.total = pos as usize;
        if parallel {
            self.works.par_iter_mut().for_each(|work| work.run());
        } else {
            for work in &mut self.works {
                work.run();
            }
        }
    }

    /// Assigns dense ids in first-occurrence flat order — the arrival
    /// order of an item-by-item intern() walk — and resolves every
    /// candidate. Returns the ids of all pushed candidates (flat, in push
    /// order) and the fresh configurations in dense-id order; the caller
    /// must pass the latter to [`Interner::append_fresh`].
    pub(crate) fn finish(mut self) -> (Vec<u32>, Vec<C>) {
        let mut out: Vec<u32> = vec![0; self.total];
        // Each fresh candidate has a unique position, so the sort is a
        // total order.
        let base = self.works[0].configs.len() as u32;
        let mut fresh_all: Vec<(u32, u32, u32)> = Vec::new();
        for (shard, work) in self.works.iter().enumerate() {
            for (local, &bucket_pos) in work.fresh.iter().enumerate() {
                let cand = &work.bucket[bucket_pos as usize];
                fresh_all.push((cand.pos, shard as u32, local as u32));
            }
        }
        fresh_all.sort_unstable();
        assert!(
            base as usize + fresh_all.len() < FRESH_BIT as usize,
            "interner overflow: > 2^31 configurations"
        );

        // Resolve each shard's provisional ids to final dense ids, and move
        // fresh configurations out of the buckets in id order.
        let mut final_ids: Vec<Vec<u32>> =
            self.works.iter().map(|w| vec![0; w.fresh.len()]).collect();
        let mut fresh_cfgs: Vec<C> = Vec::with_capacity(fresh_all.len());
        for (k, &(_, shard, local)) in fresh_all.iter().enumerate() {
            final_ids[shard as usize][local as usize] = base + k as u32;
            let bucket_pos = self.works[shard as usize].fresh[local as usize] as usize;
            let cfg = self.works[shard as usize].bucket[bucket_pos]
                .cfg
                .take()
                .expect("fresh config owned");
            fresh_cfgs.push(cfg);
        }
        for (work, ids) in self.works.iter_mut().zip(&final_ids) {
            work.table.fixup_fresh(|local| ids[local as usize]);
            for cand in &work.bucket {
                let id = if cand.id & FRESH_BIT != 0 {
                    ids[(cand.id & !FRESH_BIT) as usize]
                } else {
                    cand.id
                };
                out[cand.pos as usize] = id;
            }
        }
        (out, fresh_cfgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_is_dense() {
        let mut interner: Interner<Vec<u8>> = Interner::new();
        let (a, new_a) = interner.intern(vec![1, 2]);
        let (b, new_b) = interner.intern(vec![3]);
        let (a2, new_a2) = interner.intern(vec![1, 2]);
        assert_eq!((a, new_a), (0, true));
        assert_eq!((b, new_b), (1, true));
        assert_eq!((a2, new_a2), (0, false));
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(1), &vec![3]);
        assert_eq!(interner.index_of(&vec![1, 2]), Some(0));
        assert_eq!(interner.index_of(&vec![9]), None);
    }

    #[test]
    fn many_inserts_force_growth() {
        let mut interner: Interner<u64> = Interner::new();
        for i in 0..10_000u64 {
            let (id, fresh) = interner.intern(i);
            assert_eq!(id as u64, i);
            assert!(fresh);
        }
        for i in 0..10_000u64 {
            assert_eq!(interner.index_of(&i), Some(i as usize));
            let (_, fresh) = interner.intern(i);
            assert!(!fresh);
        }
    }

    #[test]
    fn level_merge_matches_item_interning() {
        // A level merge must assign exactly the ids an item-by-item
        // intern() walk assigns — including for duplicates.
        let level: Vec<Vec<u64>> = vec![vec![5, 6, 5], vec![6, 7], vec![8, 5]];
        let mut by_level: Interner<u64> = Interner::new();
        let ids = by_level.intern_level(level.clone(), false);
        let mut by_item: Interner<u64> = Interner::new();
        let item_ids: Vec<Vec<u32>> = level
            .iter()
            .map(|row| row.iter().map(|&c| by_item.intern(c).0).collect())
            .collect();
        assert_eq!(ids, item_ids);
        assert_eq!(by_level.configs(), by_item.configs());
        assert_eq!(ids[0][0], ids[0][2], "dup within a row");
        assert_eq!(ids[0][1], ids[1][0], "dup across rows");
        assert_eq!(by_level.len(), 4);
        for (row, id_row) in level.iter().zip(&ids) {
            for (c, &id) in row.iter().zip(id_row) {
                assert_eq!(by_level.get(id as usize), c);
            }
        }
    }

    #[test]
    fn hashed_level_matches_item_interning_across_parts() {
        // Chunked pre-hashed input must behave exactly like one flat
        // item-by-item intern() walk over the concatenation.
        let parts: Vec<Vec<u64>> = vec![vec![5, 6, 5], vec![6, 7, 8, 5], vec![], vec![9, 9]];
        let mut by_level: Interner<u64> = Interner::new();
        let hashed: Vec<Vec<(u64, u64)>> = parts
            .iter()
            .map(|p| p.iter().map(|&c| (fx_hash(&c), c)).collect())
            .collect();
        let ids = by_level.intern_hashed_level(hashed, false);
        let mut by_item: Interner<u64> = Interner::new();
        let item_ids: Vec<u32> = parts
            .iter()
            .flatten()
            .map(|&c| by_item.intern(c).0)
            .collect();
        assert_eq!(ids, item_ids);
        assert_eq!(by_level.configs(), by_item.configs());
    }

    #[test]
    fn batched_session_matches_single_level_call() {
        // The pipelined level merge feeds a `LevelSession` batch by batch;
        // the ids and fresh configurations must match one
        // `intern_hashed_level` call over the whole level, for any batch
        // split and in both the sequential and parallel dedup modes.
        let items: Vec<u64> = (0..200).map(|k| (k * 37) % 61).collect();
        let hash = |c: &u64| fx_hash(c);
        for parallel in [false, true] {
            for split in [1usize, 3, 7, 50] {
                let mut whole: Interner<u64> = Interner::new();
                whole.intern(999); // pre-seeded entries must survive
                let all: Vec<Vec<(u64, u64)>> = vec![items.iter().map(|c| (hash(c), *c)).collect()];
                let expect = whole.intern_hashed_level(all, parallel);

                let mut batched: Interner<u64> = Interner::new();
                batched.intern(999);
                let out = {
                    let (mut session, _) = batched.level_session();
                    for batch in items.chunks(items.len().div_ceil(split)) {
                        let parts: Vec<Vec<(u64, u64)>> =
                            vec![batch.iter().map(|c| (hash(c), *c)).collect()];
                        session.push_parts(parts, parallel);
                    }
                    let (out, fresh) = session.finish();
                    batched.append_fresh(fresh);
                    out
                };
                assert_eq!(out, expect, "parallel={parallel} split={split}");
                assert_eq!(batched.configs(), whole.configs());
            }
        }
    }

    #[test]
    fn parallel_and_sequential_merges_agree() {
        let level: Vec<Vec<u32>> = (0..50)
            .map(|k| (0..20).map(|j| (k * 7 + j * 13) % 97).collect())
            .collect();
        let mut seq: Interner<u32> = Interner::new();
        let mut par: Interner<u32> = Interner::new();
        let mut item: Interner<u32> = Interner::new();
        let ids_seq = seq.intern_level(level.clone(), false);
        let ids_par = par.intern_level(level.clone(), true);
        let ids_item: Vec<Vec<u32>> = level
            .iter()
            .map(|row| row.iter().map(|&c| item.intern(c).0).collect())
            .collect();
        assert_eq!(ids_seq, ids_par);
        assert_eq!(ids_seq, ids_item);
        assert_eq!(seq.configs(), par.configs());
        assert_eq!(seq.configs(), item.configs());
    }
}
