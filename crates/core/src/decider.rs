//! The engine-level decision dispatch: one function covering every
//! schedule and exploration backend.
//!
//! Historically each (schedule, backend) pair grew its own `decide_*`
//! wrapper — ten functions across `wam-core` and `wam-certify` before the
//! counter backend would have made it fourteen. [`decide`] replaces them
//! all at the engine level: callers pick a [`Schedule`] and a [`Backend`]
//! and get a verdict plus [`DecisionStats`] describing what actually ran.
//! The ergonomic, certificate-aware entry point is `wam_certify::Decider`,
//! which builds on this function; the legacy wrappers survive as
//! `#[deprecated]` one-line shims proven verdict-identical by the
//! `decider_shims` differential test.

use crate::counter::{CounterSystem, RingSystem};
use crate::explore::{
    lasso_verdict, ExclusiveSystem, Exploration, ExploreError, ExploreOptions, Symmetry,
    TransitionSystem, Verdict,
};
use crate::{Machine, Selection, State};
use std::fmt;
use wam_graph::Graph;

/// Which fairness regime / schedule to decide under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Pseudo-stochastic fairness: exhaustive exploration of the reachable
    /// configuration space and its stable-consensus sets (the paper's
    /// Prop. D.2 characterisation). The default.
    #[default]
    PseudoStochastic,
    /// The round-robin exclusive run — a fair adversarial schedule with
    /// period `|V|`, decided by deterministic lasso detection.
    RoundRobin,
    /// The synchronous run (every node steps each round; period 1), the
    /// unique fair schedule of synchronous selection.
    Synchronous,
}

/// Which state-space representation to explore under
/// [`Schedule::PseudoStochastic`]. Lasso schedules walk explicit
/// configurations regardless (a single deterministic run needs no
/// abstraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Pick the strongest applicable reduction: counter abstraction if the
    /// twin partition compresses, the ring abstraction on cycles, else the
    /// orbit quotient per [`ExploreOptions::symmetry`], else the full
    /// space. Never fails on backend grounds. The default.
    #[default]
    Auto,
    /// The full explicit configuration space, no reduction.
    Explicit,
    /// The orbit quotient under the graph's automorphism group (forces
    /// [`Symmetry::On`]).
    Quotient,
    /// The counter abstraction over the twin partition, or the ring
    /// abstraction on cycles. Errors with [`ExploreError::Unsupported`] on
    /// graphs where neither applies — the abstraction's soundness
    /// precondition is checked, not assumed.
    Counter,
}

/// The representation a decision actually ran on (recorded in
/// [`DecisionStats`]; `Auto` resolves to one of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedBackend {
    /// Full explicit configuration space.
    Explicit,
    /// Orbit quotient under `Aut(G)`.
    Quotient,
    /// Count vectors over the twin partition.
    Counter,
    /// Canonical necklaces on a cycle.
    Ring,
    /// Deterministic lasso walk (round-robin / synchronous schedules).
    Lasso,
}

impl fmt::Display for ResolvedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResolvedBackend::Explicit => "explicit",
            ResolvedBackend::Quotient => "quotient",
            ResolvedBackend::Counter => "counter",
            ResolvedBackend::Ring => "ring",
            ResolvedBackend::Lasso => "lasso",
        })
    }
}

/// What a decision cost: the backend that ran and how much state it
/// visited. `#[non_exhaustive]` so future fields (timings, peak frontier)
/// are non-breaking.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionStats {
    /// The representation the decision ran on.
    pub backend: ResolvedBackend,
    /// Configurations interned (exploration backends) or steps walked
    /// before the lasso closed (lasso backends).
    pub explored: usize,
    /// Whether the exploration spilled successor storage to disk (see
    /// [`ExploreOptions::memory_budget`]; always `false` for lasso
    /// backends and budget-less runs).
    pub spilled: bool,
}

impl DecisionStats {
    /// Bundles a backend with its explored-state count (no spill).
    pub fn new(backend: ResolvedBackend, explored: usize) -> Self {
        DecisionStats {
            backend,
            explored,
            spilled: false,
        }
    }

    /// Records whether the decision's exploration spilled to disk.
    pub fn with_spilled(mut self, spilled: bool) -> Self {
        self.spilled = spilled;
        self
    }
}

/// Decides `machine` on `graph` under the given schedule and backend —
/// the single engine entry point behind every legacy `decide_*` wrapper
/// and behind `wam_certify::Decider`.
///
/// All backends are exact: they differ in how the reachable space is
/// represented, never in the verdict (the counter and ring backends are
/// orbit quotients under subgroups of `Aut(G)`, see `wam-core::counter`).
/// `options.limit` bounds whatever the backend interns — explicit
/// configurations, orbit representatives, count vectors or necklaces — or
/// the number of lasso steps.
///
/// # Errors
///
/// * [`ExploreError::TooLarge`] / [`ExploreError::NoLasso`] when
///   `options.limit` is exhausted;
/// * [`ExploreError::Unsupported`] when [`Backend::Counter`] was requested
///   on a graph that is neither twin-compressible nor a cycle.
pub fn decide<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    schedule: Schedule,
    backend: Backend,
    options: ExploreOptions,
) -> Result<(Verdict, DecisionStats), ExploreError> {
    match schedule {
        Schedule::RoundRobin => {
            let n = graph.node_count();
            let (verdict, steps) = lasso_verdict(
                machine,
                graph,
                |t| Selection::exclusive(t % n),
                n,
                options.limit,
            )?;
            Ok((verdict, DecisionStats::new(ResolvedBackend::Lasso, steps)))
        }
        Schedule::Synchronous => {
            let all = Selection::all(graph);
            let (verdict, steps) =
                lasso_verdict(machine, graph, |_| all.clone(), 1, options.limit)?;
            Ok((verdict, DecisionStats::new(ResolvedBackend::Lasso, steps)))
        }
        Schedule::PseudoStochastic => {
            decide_pseudo_stochastic_backend(machine, graph, backend, options)
        }
    }
}

fn decide_pseudo_stochastic_backend<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    backend: Backend,
    options: ExploreOptions,
) -> Result<(Verdict, DecisionStats), ExploreError> {
    let system = ExclusiveSystem::new(machine, graph);
    let explicit = |options: ExploreOptions| {
        // The dense kernel explores the same space over packed rows with
        // memoized δ steps — observationally identical (pinned by the
        // kernel differential suite), so the stats are too. It refuses
        // machines whose reachable state set overflows `u16` ids; only
        // then fall back to the generic engine.
        match crate::kernel::explore_kernel(machine, graph, options) {
            Ok(e) => Ok((
                e.verdict(),
                DecisionStats::new(ResolvedBackend::Explicit, e.len())
                    .with_spilled(e.was_spilled()),
            )),
            Err(ExploreError::Unsupported { .. }) => {
                let e = Exploration::explore_with(&system, system.initial_config(), options)?;
                Ok((
                    e.verdict(),
                    DecisionStats::new(ResolvedBackend::Explicit, e.len())
                        .with_spilled(e.was_spilled()),
                ))
            }
            Err(e) => Err(e),
        }
    };
    let symmetric = |options: ExploreOptions| {
        let (verdict, reduced, explored, spilled) =
            crate::symmetry::decide_symmetric_stats(&system, options)?;
        let resolved = if reduced {
            ResolvedBackend::Quotient
        } else {
            ResolvedBackend::Explicit
        };
        Ok((
            verdict,
            DecisionStats::new(resolved, explored).with_spilled(spilled),
        ))
    };
    match backend {
        Backend::Explicit => explicit(options),
        Backend::Quotient => symmetric(options.symmetry(Symmetry::On)),
        Backend::Counter => match CounterSystem::new(machine, graph) {
            Ok(counter) => {
                let e = Exploration::explore_with(&counter, counter.initial_config(), options)?;
                Ok((
                    e.verdict(),
                    DecisionStats::new(ResolvedBackend::Counter, e.len())
                        .with_spilled(e.was_spilled()),
                ))
            }
            Err(_) => match RingSystem::new(machine, graph) {
                Ok(ring) => {
                    let e = Exploration::explore_with(&ring, ring.initial_config(), options)?;
                    Ok((
                        e.verdict(),
                        DecisionStats::new(ResolvedBackend::Ring, e.len())
                            .with_spilled(e.was_spilled()),
                    ))
                }
                Err(_) => Err(ExploreError::Unsupported {
                    reason: format!(
                        "the counter backend needs a twin-compressible graph or a \
                         cycle; the {}-node graph is neither",
                        graph.node_count()
                    ),
                }),
            },
        },
        Backend::Auto => {
            // `Symmetry::Off` is an explicit request for the unreduced
            // space; the counter and ring backends are symmetry
            // reductions, so honour it.
            if options.symmetry == Symmetry::Off {
                return explicit(options);
            }
            if let Ok(counter) = CounterSystem::new(machine, graph) {
                let e = Exploration::explore_with(&counter, counter.initial_config(), options)?;
                return Ok((
                    e.verdict(),
                    DecisionStats::new(ResolvedBackend::Counter, e.len())
                        .with_spilled(e.was_spilled()),
                ));
            }
            if let Ok(ring) = RingSystem::new(machine, graph) {
                let e = Exploration::explore_with(&ring, ring.initial_config(), options)?;
                return Ok((
                    e.verdict(),
                    DecisionStats::new(ResolvedBackend::Ring, e.len())
                        .with_spilled(e.was_spilled()),
                ));
            }
            symmetric(options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output};
    use wam_graph::{generators, LabelCount};

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn all_backends_agree_on_flood() {
        let m = flood();
        for counts in [vec![3u64, 1], vec![4, 0]] {
            for g in [
                generators::labelled_clique(&LabelCount::from_vec(counts.clone())),
                generators::labelled_star(&LabelCount::from_vec(counts.clone())),
                generators::labelled_cycle(&LabelCount::from_vec(counts.clone())),
            ] {
                let opts = ExploreOptions::with_limit(1_000_000);
                let reference = decide(&m, &g, Schedule::PseudoStochastic, Backend::Explicit, opts)
                    .unwrap()
                    .0;
                for backend in [Backend::Auto, Backend::Quotient, Backend::Counter] {
                    let (v, stats) =
                        decide(&m, &g, Schedule::PseudoStochastic, backend, opts).unwrap();
                    assert_eq!(v, reference, "{backend:?} on {g:?}");
                    assert!(stats.explored > 0);
                }
            }
        }
    }

    #[test]
    fn auto_resolves_to_counter_on_cliques_and_ring_on_cycles() {
        let m = flood();
        let opts = ExploreOptions::with_limit(100_000);
        let clique = generators::labelled_clique(&LabelCount::from_vec(vec![5, 1]));
        let (_, stats) =
            decide(&m, &clique, Schedule::PseudoStochastic, Backend::Auto, opts).unwrap();
        assert_eq!(stats.backend, ResolvedBackend::Counter);
        let cycle = generators::labelled_cycle(&LabelCount::from_vec(vec![6, 1]));
        let (_, stats) =
            decide(&m, &cycle, Schedule::PseudoStochastic, Backend::Auto, opts).unwrap();
        assert_eq!(stats.backend, ResolvedBackend::Ring);
    }

    #[test]
    fn symmetry_off_forces_explicit_under_auto() {
        let m = flood();
        let g = generators::labelled_clique(&LabelCount::from_vec(vec![4, 1]));
        let opts = ExploreOptions::with_limit(1_000_000).symmetry(Symmetry::Off);
        let (_, stats) = decide(&m, &g, Schedule::PseudoStochastic, Backend::Auto, opts).unwrap();
        assert_eq!(stats.backend, ResolvedBackend::Explicit);
    }

    #[test]
    fn counter_backend_refuses_rigid_graphs() {
        // A 5-node path is twin-free and not a cycle.
        let g = generators::labelled_line(&LabelCount::from_vec(vec![5]));
        let err = decide(
            &flood(),
            &g,
            Schedule::PseudoStochastic,
            Backend::Counter,
            ExploreOptions::with_limit(10_000),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::Unsupported { .. }), "{err:?}");
        // Auto falls back instead of failing.
        let (v, _) = decide(
            &flood(),
            &g,
            Schedule::PseudoStochastic,
            Backend::Auto,
            ExploreOptions::with_limit(10_000),
        )
        .unwrap();
        assert_eq!(v, Verdict::Rejects);
    }

    #[test]
    fn lasso_schedules_report_steps() {
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        for schedule in [Schedule::RoundRobin, Schedule::Synchronous] {
            let (v, stats) = decide(
                &m,
                &g,
                schedule,
                Backend::Auto,
                ExploreOptions::with_limit(10_000),
            )
            .unwrap();
            assert_eq!(v, Verdict::Accepts);
            assert_eq!(stats.backend, ResolvedBackend::Lasso);
            assert!(stats.explored > 0);
        }
    }
}
