//! Configurations `C : V → Q` and the step semantics.

use crate::{Machine, Neighbourhood, Output, Selection, State};
use rustc_hash::FxHashMap;
use std::fmt;
use wam_graph::{Graph, NodeId};

/// A configuration of a machine on a graph: one state per node.
///
/// # Example
///
/// ```
/// use wam_core::{Config, Machine, Output, Selection};
/// use wam_graph::generators;
///
/// let g = generators::cycle(3);
/// let m = Machine::new(
///     1,
///     |_| 0u32,
///     |&s, n| s.max(n.count_where(|&t| t > s)),
///     |_| Output::Neutral,
/// );
/// let c0 = Config::initial(&m, &g);
/// assert_eq!(c0.states(), &[0, 0, 0]);
/// let c1 = c0.successor(&m, &g, &Selection::exclusive(1));
/// assert_eq!(c1.states(), &[0, 0, 0]); // silent step
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config<S> {
    states: Vec<S>,
}

impl<S: fmt::Debug> fmt::Debug for Config<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config{:?}", self.states)
    }
}

impl<S: State> Config<S> {
    /// The initial configuration `C₀(v) = δ₀(λ(v))`.
    pub fn initial(machine: &Machine<S>, graph: &Graph) -> Self {
        Config {
            states: graph
                .nodes()
                .map(|v| machine.initial(graph.label(v)))
                .collect(),
        }
    }

    /// Builds a configuration from explicit per-node states.
    pub fn from_states(states: Vec<S>) -> Self {
        Config { states }
    }

    /// The per-node states, indexed by node id.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The state of node `v`.
    pub fn state(&self, v: NodeId) -> &S {
        &self.states[v]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the configuration is empty (never for valid graphs).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The β-clipped neighbourhood of node `v` in this configuration.
    pub fn neighbourhood(
        &self,
        machine: &Machine<S>,
        graph: &Graph,
        v: NodeId,
    ) -> Neighbourhood<S> {
        Neighbourhood::from_states(
            graph.neighbours(v).iter().map(|&u| self.states[u].clone()),
            machine.beta(),
        )
    }

    /// The successor configuration `succ_δ(C, S)`: all nodes in the selection
    /// evaluate δ simultaneously against this configuration; others idle.
    pub fn successor(&self, machine: &Machine<S>, graph: &Graph, sel: &Selection) -> Self {
        let mut next = self.states.clone();
        for &v in sel.nodes() {
            let n = self.neighbourhood(machine, graph, v);
            next[v] = machine.step(&self.states[v], &n);
        }
        Config { states: next }
    }

    /// Steps a single node, returning the new state (does not modify `self`).
    pub fn stepped_state(&self, machine: &Machine<S>, graph: &Graph, v: NodeId) -> S {
        let n = self.neighbourhood(machine, graph, v);
        machine.step(&self.states[v], &n)
    }

    /// Whether the configuration is accepting (every node's state in `Y`).
    pub fn is_accepting(&self, machine: &Machine<S>) -> bool {
        self.states
            .iter()
            .all(|s| machine.output(s) == Output::Accept)
    }

    /// Whether the configuration is rejecting (every node's state in `N`).
    pub fn is_rejecting(&self, machine: &Machine<S>) -> bool {
        self.states
            .iter()
            .all(|s| machine.output(s) == Output::Reject)
    }

    /// The consensus output, if all nodes agree.
    pub fn consensus(&self, machine: &Machine<S>) -> Option<Output> {
        let first = machine.output(&self.states[0]);
        self.states[1..]
            .iter()
            .all(|s| machine.output(s) == first)
            .then_some(first)
    }

    /// The multiset of states (state ↦ number of nodes occupying it).
    pub fn state_count(&self) -> FxHashMap<S, usize> {
        let mut m = FxHashMap::default();
        for s in &self.states {
            *m.entry(s.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Maps every node's state through `f`.
    pub fn map<T: State>(&self, f: impl Fn(&S) -> T) -> Config<T> {
        Config {
            states: self.states.iter().map(f).collect(),
        }
    }
}

/// A configuration bit-packed into `u64` words: each node's interned state
/// id occupies a fixed power-of-two bit-field, so fields never straddle a
/// word boundary and get/patch are shift-and-mask operations.
///
/// This is the dense successor kernel's configuration representation (see
/// `wam_core::kernel`): equality and hashing run word-wise over the packed
/// row — no per-node comparison, and [`Interner`](crate::Interner) shard
/// collision checks touch one or two words for typical graphs. Rows of at
/// most two words (e.g. 16 nodes at 8 bits per node) are stored **inline**,
/// so cloning a configuration and patching one node's field — the exclusive
/// successor construction — allocates nothing.
///
/// The bit width is session-wide: every `PackedConfig` in one kernel
/// exploration uses the same `(bits, nodes)` layout, with unused high bits
/// zero, so word-wise `Eq`/`Hash` coincide with per-node equality. The
/// width lives with the kernel session, not here — all accessors take it
/// explicitly.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedConfig(PackedRepr);

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum PackedRepr {
    /// Up to two words, stored without heap allocation; unused words zero.
    Inline([u64; 2]),
    /// Longer rows spill to the heap.
    Heap(Box<[u64]>),
}

impl fmt::Debug for PackedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedConfig{:x?}", self.words())
    }
}

impl PackedConfig {
    /// Valid per-node bit widths: powers of two, so a field never straddles
    /// a `u64` word and every access is one shift-and-mask.
    pub const WIDTHS: [u32; 5] = [1, 2, 4, 8, 16];

    /// Number of `u64` words a row of `nodes` fields of `bits` bits needs.
    #[inline]
    pub fn words_for(nodes: usize, bits: u32) -> usize {
        let per_word = (64 / bits) as usize;
        nodes.div_ceil(per_word).max(1)
    }

    /// Packs per-node state ids into a row. Every id must fit in `bits`
    /// bits (the kernel widens and restarts before this can fail).
    pub fn pack(ids: impl IntoIterator<Item = u16>, nodes: usize, bits: u32) -> Self {
        debug_assert!(Self::WIDTHS.contains(&bits), "unsupported width {bits}");
        let nwords = Self::words_for(nodes, bits);
        let mut pc = if nwords <= 2 {
            PackedConfig(PackedRepr::Inline([0; 2]))
        } else {
            PackedConfig(PackedRepr::Heap(vec![0u64; nwords].into_boxed_slice()))
        };
        let mut n = 0usize;
        for (v, id) in ids.into_iter().enumerate() {
            debug_assert!(u32::from(id) < (1u32 << bits).min(1 << 16), "id overflow");
            pc.set(v, id, bits);
            n += 1;
        }
        debug_assert_eq!(n, nodes, "packed row length mismatch");
        pc
    }

    /// The packed words (unused high bits are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.0 {
            PackedRepr::Inline(w) => w,
            PackedRepr::Heap(w) => w,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.0 {
            PackedRepr::Inline(w) => w,
            PackedRepr::Heap(w) => w,
        }
    }

    /// The state id of node `v` under the session width `bits`.
    ///
    /// `bits` is a power of two, so the word index and in-word offset are
    /// shifts and masks — no hardware division on the kernel's hot path.
    #[inline]
    pub fn get(&self, v: usize, bits: u32) -> u16 {
        let lb = bits.trailing_zeros(); // log₂ bits
        let word = self.words()[v >> (6 - lb)];
        let shift = (((v as u64) << lb) & 63) as u32;
        let mask = (1u64 << bits) - 1;
        ((word >> shift) & mask) as u16
    }

    /// Overwrites node `v`'s field with `id` — the single-position patch
    /// behind exclusive successor construction.
    #[inline]
    pub fn set(&mut self, v: usize, id: u16, bits: u32) {
        let lb = bits.trailing_zeros();
        let shift = (((v as u64) << lb) & 63) as u32;
        let mask = ((1u64 << bits) - 1) << shift;
        let w = &mut self.words_mut()[v >> (6 - lb)];
        *w = (*w & !mask) | (u64::from(id) << shift);
    }

    /// Clones the row and patches one node's field: the allocation-free
    /// (for inline rows) exclusive-successor step.
    #[inline]
    pub fn with_patched(&self, v: usize, id: u16, bits: u32) -> Self {
        let mut next = self.clone();
        next.set(v, id, bits);
        next
    }

    /// Unpacks the row back into per-node state ids.
    pub fn unpack(&self, nodes: usize, bits: u32) -> Vec<u16> {
        let mut out = Vec::with_capacity(nodes);
        self.unpack_into(nodes, bits, &mut out);
        out
    }

    /// Appends the per-node state ids to `out`, word-wise: one word load
    /// per `64 / bits` nodes instead of one indexed field extraction per
    /// node — the kernel unpacks every configuration it expands.
    #[inline]
    pub fn unpack_into(&self, nodes: usize, bits: u32, out: &mut Vec<u16>) {
        let lb = bits.trailing_zeros();
        let per_word = 64usize >> lb;
        let mask = (1u64 << bits) - 1;
        let mut left = nodes;
        for &word in self.words() {
            if left == 0 {
                break;
            }
            let n = per_word.min(left);
            out.extend((0..n).map(|j| ((word >> (j << lb)) & mask) as u16));
            left -= n;
        }
    }

    /// Heap bytes owned by this row (0 for inline rows); the arena
    /// accounting behind the kernel bench's `memory_bytes` column.
    pub fn heap_bytes(&self) -> usize {
        match &self.0 {
            PackedRepr::Inline(_) => 0,
            PackedRepr::Heap(w) => std::mem::size_of_val(&**w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Output;
    use wam_graph::generators;

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn initial_uses_labels() {
        let g = generators::labelled_line(&wam_graph::LabelCount::from_vec(vec![2, 1]));
        let c = Config::initial(&flood(), &g);
        assert_eq!(c.states(), &[false, false, true]);
    }

    #[test]
    fn exclusive_step_flood() {
        let g = generators::labelled_line(&wam_graph::LabelCount::from_vec(vec![2, 1]));
        let m = flood();
        let c0 = Config::initial(&m, &g);
        let c1 = c0.successor(&m, &g, &Selection::exclusive(1));
        assert_eq!(c1.states(), &[false, true, true]);
        let c2 = c1.successor(&m, &g, &Selection::exclusive(0));
        assert_eq!(c2.states(), &[true, true, true]);
        assert!(c2.is_accepting(&m));
        assert_eq!(c2.consensus(&m), Some(Output::Accept));
    }

    #[test]
    fn synchronous_step_is_simultaneous() {
        // On a line t-f-f-t, one synchronous step floods inward from both ends.
        let g = generators::line(4);
        let m = flood();
        let c = Config::from_states(vec![true, false, false, true]);
        let all = Selection::all(&g);
        let c1 = c.successor(&m, &g, &all);
        assert_eq!(c1.states(), &[true, true, true, true]);
    }

    #[test]
    fn unselected_nodes_idle() {
        let g = generators::line(3);
        let m = flood();
        let c = Config::from_states(vec![true, false, false]);
        let c1 = c.successor(&m, &g, &Selection::exclusive(2));
        // Node 2 sees only node 1 (false), so nothing changes.
        assert_eq!(c1.states(), &[true, false, false]);
    }

    #[test]
    fn state_count_aggregates() {
        let c = Config::from_states(vec![1, 1, 2]);
        let sc = c.state_count();
        assert_eq!(sc[&1], 2);
        assert_eq!(sc[&2], 1);
    }

    #[test]
    fn no_consensus_when_mixed() {
        let m = flood();
        let c = Config::from_states(vec![true, false, false]);
        assert_eq!(c.consensus(&m), None);
        assert!(!c.is_accepting(&m));
        assert!(!c.is_rejecting(&m));
    }

    #[test]
    fn packed_roundtrip_all_widths() {
        for &bits in &PackedConfig::WIDTHS {
            for nodes in [1usize, 3, 7, 16, 40, 200] {
                let max = 1u32 << bits.min(15);
                let ids: Vec<u16> = (0..nodes)
                    .map(|v| ((v as u32 * 7 + 3) % max) as u16)
                    .collect();
                let pc = PackedConfig::pack(ids.iter().copied(), nodes, bits);
                assert_eq!(pc.unpack(nodes, bits), ids, "bits={bits} nodes={nodes}");
                // Inline rows always carry two words; any words beyond the
                // logical row are zero, so Eq/Hash stay consistent.
                let nwords = PackedConfig::words_for(nodes, bits);
                assert!(pc.words().len() >= nwords);
                assert!(pc.words()[nwords..].iter().all(|&w| w == 0));
            }
        }
    }

    #[test]
    fn packed_patch_changes_one_field() {
        let ids: Vec<u16> = (0..20).map(|v| (v % 13) as u16).collect();
        let pc = PackedConfig::pack(ids.iter().copied(), 20, 4);
        for v in 0..20 {
            let patched = pc.with_patched(v, 9, 4);
            let mut expect = ids.clone();
            expect[v] = 9;
            assert_eq!(patched.unpack(20, 4), expect);
            // The original row is untouched.
            assert_eq!(pc.unpack(20, 4), ids);
        }
    }

    #[test]
    fn packed_eq_hash_are_wordwise_consistent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = PackedConfig::pack([1u16, 2, 3], 3, 8);
        let b = PackedConfig::pack([1u16, 2, 3], 3, 8);
        let c = PackedConfig::pack([1u16, 2, 4], 3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let h = |p: &PackedConfig| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn packed_storage_tiers() {
        // ≤ 2 words inline, beyond that heap.
        let small = PackedConfig::pack((0..16).map(|v| v as u16), 16, 8);
        assert_eq!(small.heap_bytes(), 0);
        let big = PackedConfig::pack((0..40).map(|v| (v % 250) as u16), 40, 8);
        assert!(big.heap_bytes() >= 5 * 8);
    }
}
