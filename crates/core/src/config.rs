//! Configurations `C : V → Q` and the step semantics.

use crate::{Machine, Neighbourhood, Output, Selection, State};
use std::collections::HashMap;
use std::fmt;
use wam_graph::{Graph, NodeId};

/// A configuration of a machine on a graph: one state per node.
///
/// # Example
///
/// ```
/// use wam_core::{Config, Machine, Output, Selection};
/// use wam_graph::generators;
///
/// let g = generators::cycle(3);
/// let m = Machine::new(
///     1,
///     |_| 0u32,
///     |&s, n| s.max(n.count_where(|&t| t > s)),
///     |_| Output::Neutral,
/// );
/// let c0 = Config::initial(&m, &g);
/// assert_eq!(c0.states(), &[0, 0, 0]);
/// let c1 = c0.successor(&m, &g, &Selection::exclusive(1));
/// assert_eq!(c1.states(), &[0, 0, 0]); // silent step
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config<S> {
    states: Vec<S>,
}

impl<S: fmt::Debug> fmt::Debug for Config<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config{:?}", self.states)
    }
}

impl<S: State> Config<S> {
    /// The initial configuration `C₀(v) = δ₀(λ(v))`.
    pub fn initial(machine: &Machine<S>, graph: &Graph) -> Self {
        Config {
            states: graph
                .nodes()
                .map(|v| machine.initial(graph.label(v)))
                .collect(),
        }
    }

    /// Builds a configuration from explicit per-node states.
    pub fn from_states(states: Vec<S>) -> Self {
        Config { states }
    }

    /// The per-node states, indexed by node id.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The state of node `v`.
    pub fn state(&self, v: NodeId) -> &S {
        &self.states[v]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the configuration is empty (never for valid graphs).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The β-clipped neighbourhood of node `v` in this configuration.
    pub fn neighbourhood(
        &self,
        machine: &Machine<S>,
        graph: &Graph,
        v: NodeId,
    ) -> Neighbourhood<S> {
        Neighbourhood::from_states(
            graph.neighbours(v).iter().map(|&u| self.states[u].clone()),
            machine.beta(),
        )
    }

    /// The successor configuration `succ_δ(C, S)`: all nodes in the selection
    /// evaluate δ simultaneously against this configuration; others idle.
    pub fn successor(&self, machine: &Machine<S>, graph: &Graph, sel: &Selection) -> Self {
        let mut next = self.states.clone();
        for &v in sel.nodes() {
            let n = self.neighbourhood(machine, graph, v);
            next[v] = machine.step(&self.states[v], &n);
        }
        Config { states: next }
    }

    /// Steps a single node, returning the new state (does not modify `self`).
    pub fn stepped_state(&self, machine: &Machine<S>, graph: &Graph, v: NodeId) -> S {
        let n = self.neighbourhood(machine, graph, v);
        machine.step(&self.states[v], &n)
    }

    /// Whether the configuration is accepting (every node's state in `Y`).
    pub fn is_accepting(&self, machine: &Machine<S>) -> bool {
        self.states
            .iter()
            .all(|s| machine.output(s) == Output::Accept)
    }

    /// Whether the configuration is rejecting (every node's state in `N`).
    pub fn is_rejecting(&self, machine: &Machine<S>) -> bool {
        self.states
            .iter()
            .all(|s| machine.output(s) == Output::Reject)
    }

    /// The consensus output, if all nodes agree.
    pub fn consensus(&self, machine: &Machine<S>) -> Option<Output> {
        let first = machine.output(&self.states[0]);
        self.states[1..]
            .iter()
            .all(|s| machine.output(s) == first)
            .then_some(first)
    }

    /// The multiset of states (state ↦ number of nodes occupying it).
    pub fn state_count(&self) -> HashMap<S, usize> {
        let mut m = HashMap::new();
        for s in &self.states {
            *m.entry(s.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Maps every node's state through `f`.
    pub fn map<T: State>(&self, f: impl Fn(&S) -> T) -> Config<T> {
        Config {
            states: self.states.iter().map(f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Output;
    use wam_graph::generators;

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn initial_uses_labels() {
        let g = generators::labelled_line(&wam_graph::LabelCount::from_vec(vec![2, 1]));
        let c = Config::initial(&flood(), &g);
        assert_eq!(c.states(), &[false, false, true]);
    }

    #[test]
    fn exclusive_step_flood() {
        let g = generators::labelled_line(&wam_graph::LabelCount::from_vec(vec![2, 1]));
        let m = flood();
        let c0 = Config::initial(&m, &g);
        let c1 = c0.successor(&m, &g, &Selection::exclusive(1));
        assert_eq!(c1.states(), &[false, true, true]);
        let c2 = c1.successor(&m, &g, &Selection::exclusive(0));
        assert_eq!(c2.states(), &[true, true, true]);
        assert!(c2.is_accepting(&m));
        assert_eq!(c2.consensus(&m), Some(Output::Accept));
    }

    #[test]
    fn synchronous_step_is_simultaneous() {
        // On a line t-f-f-t, one synchronous step floods inward from both ends.
        let g = generators::line(4);
        let m = flood();
        let c = Config::from_states(vec![true, false, false, true]);
        let all = Selection::all(&g);
        let c1 = c.successor(&m, &g, &all);
        assert_eq!(c1.states(), &[true, true, true, true]);
    }

    #[test]
    fn unselected_nodes_idle() {
        let g = generators::line(3);
        let m = flood();
        let c = Config::from_states(vec![true, false, false]);
        let c1 = c.successor(&m, &g, &Selection::exclusive(2));
        // Node 2 sees only node 1 (false), so nothing changes.
        assert_eq!(c1.states(), &[true, false, false]);
    }

    #[test]
    fn state_count_aggregates() {
        let c = Config::from_states(vec![1, 1, 2]);
        let sc = c.state_count();
        assert_eq!(sc[&1], 2);
        assert_eq!(sc[&2], 1);
    }

    #[test]
    fn no_consensus_when_mixed() {
        let m = flood();
        let c = Config::from_states(vec![true, false, false]);
        assert_eq!(c.consensus(&m), None);
        assert!(!c.is_accepting(&m));
        assert!(!c.is_rejecting(&m));
    }
}
