//! Product machines: run two machines side by side and combine their
//! outputs — the machine-level counterpart of "the set of decidable
//! properties is closed under boolean combinations" (used by
//! Propositions C.4 and C.6).

use crate::{Machine, Output, State};

/// How to combine two component outputs into one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combine {
    /// Accept iff both components accept (reject if either rejects).
    And,
    /// Accept iff either component accepts (reject if both reject).
    Or,
    /// Accept iff the components disagree decisively.
    Xor,
}

impl Combine {
    /// Combines two component outputs. `Neutral` inputs stay undecided.
    pub fn apply(self, a: Output, b: Output) -> Output {
        use Output::*;
        match (self, a, b) {
            (_, Neutral, _) | (_, _, Neutral) => Neutral,
            (Combine::And, Accept, Accept) => Accept,
            (Combine::And, _, _) => Reject,
            (Combine::Or, Reject, Reject) => Reject,
            (Combine::Or, _, _) => Accept,
            (Combine::Xor, x, y) => {
                if x != y {
                    Accept
                } else {
                    Reject
                }
            }
        }
    }
}

/// Runs `left` and `right` in lock step on the same node and combines
/// their outputs with `combine`. The counting bound is the maximum of the
/// two; each component receives the clip-exact projection of the pair view
/// onto its own state space.
///
/// Soundness note: each selected node steps **both** components at once,
/// which corresponds to running the two automata under the *same*
/// schedule. Since distributed automata are schedule-independent
/// (consistency), the product decides the boolean combination whenever
/// both components decide their properties.
///
/// # Example
///
/// ```
/// use wam_core::{decide, product, Backend, Combine, ExploreOptions, Machine, Output, Schedule};
/// use wam_graph::{generators, LabelCount};
///
/// let has = |label: u16| Machine::new(
///     1,
///     move |l: wam_graph::Label| l.0 == label,
///     |&s: &bool, n| s || n.exists(|&t| t),
///     |&s| if s { Output::Accept } else { Output::Reject },
/// );
/// // "label 0 present AND label 1 present".
/// let both = product(&has(0), &has(1), Combine::And);
/// let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 1]));
/// let (verdict, _) = decide(
///     &both,
///     &g,
///     Schedule::PseudoStochastic,
///     Backend::Auto,
///     ExploreOptions::with_limit(100_000),
/// )
/// .unwrap();
/// assert!(verdict.is_accepting());
/// ```
pub fn product<A: State, B: State>(
    left: &Machine<A>,
    right: &Machine<B>,
    combine: Combine,
) -> Machine<(A, B)> {
    let beta = left.beta().max(right.beta());
    let l_init = left.clone();
    let r_init = right.clone();
    let l_step = left.clone();
    let r_step = right.clone();
    let l_out = left.clone();
    let r_out = right.clone();
    Machine::new(
        beta,
        move |lab| (l_init.initial(lab), r_init.initial(lab)),
        move |(a, b), n| {
            let left_view = n.project(|(a2, _): &(A, B)| a2.clone());
            let right_view = n.project(|(_, b2): &(A, B)| b2.clone());
            (l_step.step(a, &left_view), r_step.step(b, &right_view))
        },
        move |(a, b)| combine.apply(l_out.output(a), r_out.output(b)),
    )
}

/// Negates a machine's verdict (swaps accepting and rejecting states).
pub fn negate<S: State>(machine: &Machine<S>) -> Machine<S> {
    machine.clone().map_output({
        let m = machine.clone();
        move |s| match m.output(s) {
            Output::Accept => Output::Reject,
            Output::Reject => Output::Accept,
            Output::Neutral => Output::Neutral,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, ExploreOptions, Machine, Output, Schedule};

    fn ps<S: crate::State>(m: &Machine<S>, g: &wam_graph::Graph, limit: usize) -> crate::Verdict {
        let (v, _) = crate::decide(
            m,
            g,
            Schedule::PseudoStochastic,
            Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .unwrap();
        v
    }

    fn rr<S: crate::State>(m: &Machine<S>, g: &wam_graph::Graph, limit: usize) -> crate::Verdict {
        let (v, _) = crate::decide(
            m,
            g,
            Schedule::RoundRobin,
            Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .unwrap();
        v
    }
    use wam_graph::{generators, Label, LabelCount};

    fn has(label: u16) -> Machine<bool> {
        Machine::new(
            1,
            move |l: Label| l.0 == label,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn combine_truth_tables() {
        use Output::*;
        assert_eq!(Combine::And.apply(Accept, Accept), Accept);
        assert_eq!(Combine::And.apply(Accept, Reject), Reject);
        assert_eq!(Combine::Or.apply(Reject, Accept), Accept);
        assert_eq!(Combine::Or.apply(Reject, Reject), Reject);
        assert_eq!(Combine::Xor.apply(Accept, Reject), Accept);
        assert_eq!(Combine::Xor.apply(Accept, Accept), Reject);
        assert_eq!(Combine::And.apply(Neutral, Accept), Neutral);
    }

    #[test]
    fn conjunction_of_presence_machines() {
        let both = product(&has(0), &has(1), Combine::And);
        for (a, b, expect) in [(2u64, 1u64, true), (3, 0, false), (0, 3, false)] {
            let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
            let v = ps(&both, &g, 500_000);
            assert_eq!(v.decided(), Some(expect), "({a},{b})");
            let v2 = rr(&both, &g, 500_000);
            assert_eq!(v2.decided(), Some(expect), "({a},{b}) rr");
        }
    }

    #[test]
    fn xor_and_negation() {
        let xor = product(&has(0), &has(1), Combine::Xor);
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 0]));
        assert!(ps(&xor, &g, 500_000).is_accepting());
        let neg = negate(&xor);
        assert!(ps(&neg, &g, 500_000).is_rejecting());
    }

    #[test]
    fn product_beta_is_max() {
        let m1 = Machine::new(2, |_: Label| 0u8, |&s, _| s, |_| Output::Neutral);
        let m2 = Machine::new(5, |_: Label| 0u8, |&s, _| s, |_| Output::Neutral);
        assert_eq!(product(&m1, &m2, Combine::And).beta(), 5);
    }
}
