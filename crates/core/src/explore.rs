//! Exact decision procedures on configuration graphs.
//!
//! On small graphs the configuration space of a machine (plain or extended)
//! is finite and explorable, which lets us decide acceptance *exactly*
//! instead of sampling:
//!
//! * **Pseudo-stochastic fairness**: the paper's own characterisation (used
//!   in Prop. D.2) — the automaton accepts from `C₀` iff a *stably
//!   accepting* configuration is reachable, i.e. a `C` all of whose reachable
//!   configurations are accepting. [`Exploration`] computes reachability plus
//!   the reverse closure, for any [`TransitionSystem`].
//! * **Adversarial fairness**: a consistent automaton gives the same verdict
//!   on every fair run, so it suffices to evaluate one concrete fair run.
//!   Round-robin and synchronous runs are deterministic and therefore
//!   ultimately periodic; [`decide_adversarial_round_robin`] and
//!   [`decide_synchronous`] detect the lasso and read the verdict off the
//!   loop. A `NoConsensus` result on these runs witnesses that the machine
//!   is *not* a distributed automaton of the corresponding class for this
//!   input (no stable consensus forms).
//!
//! Extended models (weak broadcasts, absence detection, rendez-vous, strong
//! broadcasts) implement [`TransitionSystem`] in `wam-extensions` and reuse
//! the same machinery.
//!
//! # Engine architecture
//!
//! The explorer is a level-synchronous BFS over hash-consed configurations:
//!
//! * every configuration is interned exactly once into a dense `u32` id by
//!   a sharded FxHash [`Interner`](crate::Interner) — BFS, lasso detection
//!   and all `Pre*` machinery pass ids, never configuration values;
//! * when a frontier is at least [`ExploreOptions::frontier_threshold`]
//!   wide **and** its estimated work (width × observed average out-degree)
//!   clears a multiple of that threshold (and more than one thread is
//!   available), successor generation — chunked per thread, hashed at the
//!   source, flat buffers instead of per-row vectors — and per-shard
//!   deduplication run in parallel under `rayon`; below the gate,
//!   successors are interned item-by-item with no bucketing or thread
//!   overhead, and explorations whose levels never clear it skip thread-
//!   pool construction entirely. The parallel merge assigns ids in arrival
//!   order by construction, so ids, edges and verdicts are bit-identical
//!   either way;
//! * the step relation is stored as a compact CSR (offsets + `u32`
//!   targets); [`Exploration::pre_star`] and the stable-consensus queries
//!   run bitset fixpoints over a lazily built, cached reverse CSR, so
//!   [`Exploration::verdict`] transposes the edge list once, not twice;
//! * successor id lists are deduplicated by sort + dedup instead of the
//!   quadratic membership scans of the original implementation.

use crate::bitset::BitSet;
use crate::{Config, Interner, Machine, Selection, State};
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::error::Error;
use std::fmt;
use std::hash::Hash;
use std::sync::OnceLock;
use wam_graph::Graph;

/// Outcome of an exact decision procedure.
///
/// The type is `#[must_use]` (rather than each decider function, which
/// would trip `clippy::double_must_use` on the `Result`-returning ones):
/// computing a verdict is always expensive, so dropping one is a bug.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Every fair run stabilises to an accepting consensus.
    Accepts,
    /// Every fair run stabilises to a rejecting consensus.
    Rejects,
    /// The evaluated run(s) do not stabilise to a consensus: the machine does
    /// not decide this input (consistency fails or consensus never forms).
    NoConsensus,
    /// Both a stably accepting and a stably rejecting configuration are
    /// reachable: the machine violates the consistency condition outright.
    Inconsistent,
}

impl Verdict {
    /// Whether the verdict is `Accepts`.
    pub fn is_accepting(self) -> bool {
        self == Verdict::Accepts
    }

    /// Whether the verdict is `Rejects`.
    pub fn is_rejecting(self) -> bool {
        self == Verdict::Rejects
    }

    /// `Some(true)` / `Some(false)` for accept / reject, `None` otherwise.
    pub fn decided(self) -> Option<bool> {
        match self {
            Verdict::Accepts => Some(true),
            Verdict::Rejects => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Accepts => "accepts",
            Verdict::Rejects => "rejects",
            Verdict::NoConsensus => "no consensus",
            Verdict::Inconsistent => "inconsistent",
        };
        f.write_str(s)
    }
}

/// Error from an exact decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The reachable configuration space exceeded the caller's limit.
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
        /// How many configurations had been interned when the limit
        /// tripped (always `> limit`; tells callers how far over budget
        /// the level that tripped it went).
        interned: usize,
        /// The number of completed BFS levels — the depth at which the
        /// exploration was abandoned (level 0 is the start configuration
        /// alone, so after the first expansion `depth` is 1).
        depth: usize,
    },
    /// A deterministic run did not close its lasso within the step limit.
    NoLasso {
        /// The step limit that was exhausted.
        limit: usize,
    },
    /// An explicitly requested backend does not apply to the input (e.g.
    /// [`Backend::Counter`](crate::Backend::Counter) on a graph whose twin
    /// partition is all singletons and which is not a cycle). `Auto` never
    /// produces this: it falls back instead.
    Unsupported {
        /// Human-readable reason for the refusal.
        reason: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooLarge {
                limit,
                interned,
                depth,
            } => {
                write!(
                    f,
                    "configuration space exceeds limit of {limit} \
                     ({interned} configurations interned, BFS depth {depth})"
                )
            }
            ExploreError::NoLasso { limit } => write!(f, "no lasso within {limit} steps"),
            ExploreError::Unsupported { reason } => {
                write!(f, "requested backend is unsupported here: {reason}")
            }
        }
    }
}

impl Error for ExploreError {}

/// A finite-branching transition system over hashable configurations — the
/// abstraction all exact deciders run on.
///
/// Plain machines (exclusive selection) implement this via
/// [`ExclusiveSystem`]; the extended models of `wam-extensions` provide their
/// own implementations whose `successors` enumerate the scheduler's
/// nondeterministic choices (broadcast initiator sets, absence-detection
/// covers, rendez-vous pairs, …).
pub trait TransitionSystem {
    /// The configuration type.
    type C: Clone + Eq + Hash + fmt::Debug;

    /// The initial configuration.
    fn initial_config(&self) -> Self::C;

    /// All configurations reachable in one **non-silent** step. The list
    /// may contain duplicates; the exploration engine deduplicates after
    /// interning (sort + dedup on dense ids), which is cheaper than
    /// scanning for duplicates configuration-by-configuration here.
    fn successors(&self, c: &Self::C) -> Vec<Self::C>;

    /// Whether every node is in an accepting state.
    fn is_accepting(&self, c: &Self::C) -> bool;

    /// Whether every node is in a rejecting state.
    fn is_rejecting(&self, c: &Self::C) -> bool;
}

/// The exclusive-selection transition system of a plain machine on a graph:
/// one node steps at a time.
#[derive(Debug)]
pub struct ExclusiveSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
}

impl<'a, S: State> ExclusiveSystem<'a, S> {
    /// Wraps a machine and a graph.
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Self {
        ExclusiveSystem { machine, graph }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'a Machine<S> {
        self.machine
    }

    /// The communication graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }
}

impl<S: State> TransitionSystem for ExclusiveSystem<'_, S> {
    type C = Config<S>;

    fn initial_config(&self) -> Config<S> {
        Config::initial(self.machine, self.graph)
    }

    fn successors(&self, c: &Config<S>) -> Vec<Config<S>> {
        let mut out = Vec::new();
        for v in self.graph.nodes() {
            let stepped = c.stepped_state(self.machine, self.graph, v);
            if stepped == *c.state(v) {
                continue; // silent
            }
            let mut next = c.states().to_vec();
            next[v] = stepped;
            out.push(Config::from_states(next));
        }
        out
    }

    fn is_accepting(&self, c: &Config<S>) -> bool {
        c.is_accepting(self.machine)
    }

    fn is_rejecting(&self, c: &Config<S>) -> bool {
        c.is_rejecting(self.machine)
    }
}

/// The liberal-selection transition system of a plain machine: one step may
/// activate **any** nonempty node subset simultaneously. The successor set
/// is exponential in `|V|`, so this is reserved for the smallest graphs —
/// its purpose is to check the \[16\] selection-collapse exactly:
/// verdicts under liberal selection match those under exclusive selection.
#[derive(Debug)]
pub struct LiberalSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
}

impl<'a, S: State> LiberalSystem<'a, S> {
    /// Wraps a machine and a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 16 nodes (2¹⁶ selections per step
    /// is the sanity bound).
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Self {
        assert!(
            graph.node_count() <= 16,
            "liberal exploration is limited to 16 nodes"
        );
        LiberalSystem { machine, graph }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'a Machine<S> {
        self.machine
    }

    /// The communication graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }
}

impl<S: State> TransitionSystem for LiberalSystem<'_, S> {
    type C = Config<S>;

    fn initial_config(&self) -> Config<S> {
        Config::initial(self.machine, self.graph)
    }

    fn successors(&self, c: &Config<S>) -> Vec<Config<S>> {
        let n = self.graph.node_count();
        // Precompute each node's stepped state once; a simultaneous step of
        // set S applies exactly these (all against the same pre-step view).
        let stepped: Vec<S> = self
            .graph
            .nodes()
            .map(|v| c.stepped_state(self.machine, self.graph, v))
            .collect();
        let moving: Vec<usize> = (0..n).filter(|&v| stepped[v] != *c.state(v)).collect();
        // Selections that differ only on silent nodes yield the same config,
        // so it suffices to enumerate subsets of the moving nodes. Distinct
        // masks yield distinct configurations, so no dedup is needed.
        let mut out = Vec::with_capacity((1usize << moving.len()).saturating_sub(1));
        for mask in 1usize..(1 << moving.len()) {
            let mut states = c.states().to_vec();
            for (i, &v) in moving.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    states[v] = stepped[v].clone();
                }
            }
            out.push(Config::from_states(states));
        }
        out
    }

    fn is_accepting(&self, c: &Config<S>) -> bool {
        c.is_accepting(self.machine)
    }

    fn is_rejecting(&self, c: &Config<S>) -> bool {
        c.is_rejecting(self.machine)
    }
}

/// Whether a decider should explore the orbit quotient of the
/// configuration space under the communication graph's automorphism group
/// (see [`decide_symmetric`](crate::decide_symmetric) and the
/// `wam-core::symmetry` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Symmetry {
    /// Reduce when the structural automorphism group is non-trivial and was
    /// enumerated completely within [`ExploreOptions::symmetry_cap`];
    /// otherwise explore the full space. The right default: reduction is
    /// sound whenever it applies, and `Auto` never pays canonicalisation
    /// overhead on rigid graphs.
    #[default]
    Auto,
    /// Always canonicalise, even under a trivial group (useful for testing
    /// the quotient machinery itself; a trivial group makes it a no-op
    /// semantically but still exercises the wrapper).
    On,
    /// Never reduce: explore the full configuration space.
    Off,
}

/// Tuning knobs for [`Exploration::explore_with`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`ExploreOptions::default`] / [`ExploreOptions::with_limit`] and refine
/// through the builder methods ([`threads`](ExploreOptions::threads),
/// [`limit`](ExploreOptions::limit), …), so future backend knobs (counter
/// bounds, spill budgets) can be added without breaking downstream code.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Worker threads for frontier-parallel BFS. `0` uses the rayon
    /// default (the machine's available parallelism, or the
    /// `RAYON_NUM_THREADS` environment variable); `1` forces the
    /// sequential path.
    pub threads: usize,
    /// Minimum frontier width before a BFS level is processed in
    /// parallel; narrower levels take the sequential path, so small
    /// explorations never pay thread overhead.
    pub frontier_threshold: usize,
    /// Maximum number of reachable configurations before
    /// [`ExploreError::TooLarge`]. Under symmetry reduction this bounds the
    /// number of *orbit representatives*, which is what is interned.
    pub limit: usize,
    /// Orbit-quotient reduction policy. [`Exploration`] itself never
    /// canonicalises — the option is consumed by
    /// [`decide_symmetric`](crate::decide_symmetric) (and through it by
    /// [`decide_pseudo_stochastic`]), which wraps the system in a
    /// [`QuotientSystem`](crate::QuotientSystem) before exploring.
    pub symmetry: Symmetry,
    /// Cap on the order of the enumerated automorphism group; larger groups
    /// fall back to no reduction (see
    /// [`wam_graph::automorphism_group`](wam_graph::automorphism_group)).
    pub symmetry_cap: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            threads: 0,
            frontier_threshold: 128,
            limit: 1_000_000,
            symmetry: Symmetry::default(),
            symmetry_cap: wam_graph::DEFAULT_GROUP_CAP,
        }
    }
}

impl ExploreOptions {
    /// Default options with the given configuration-count limit.
    pub fn with_limit(limit: usize) -> Self {
        ExploreOptions {
            limit,
            ..ExploreOptions::default()
        }
    }

    /// Sets the worker thread count (`0` = rayon default, `1` = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the minimum frontier width for parallel BFS levels.
    pub fn frontier_threshold(mut self, frontier_threshold: usize) -> Self {
        self.frontier_threshold = frontier_threshold;
        self
    }

    /// Sets the configuration-count limit.
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Sets the orbit-quotient reduction policy.
    pub fn symmetry(mut self, symmetry: Symmetry) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Sets the cap on the enumerated automorphism group order.
    pub fn symmetry_cap(mut self, symmetry_cap: usize) -> Self {
        self.symmetry_cap = symmetry_cap;
        self
    }
}

/// The explored configuration graph of a [`TransitionSystem`]: every
/// configuration reachable from the initial one (hash-consed to dense
/// `u32` ids), the non-silent step relation in CSR form, acceptance flags
/// as bitsets, and `Pre*` machinery over a cached reverse CSR.
#[derive(Debug)]
pub struct Exploration<C> {
    interner: Interner<C>,
    /// CSR offsets: the successor ids of configuration `i` are
    /// `succ_ids[succ_off[i]..succ_off[i + 1]]`, sorted and deduplicated.
    succ_off: Vec<u32>,
    succ_ids: Vec<u32>,
    accepting: BitSet,
    rejecting: BitSet,
    /// Reverse CSR (predecessors), built on first `Pre*` query and shared
    /// by every subsequent one.
    rev: OnceLock<(Vec<u32>, Vec<u32>)>,
}

/// Per-worker output of one parallel BFS level: the per-frontier-row
/// successor counts plus the flat `(hash, configuration)` buffer the
/// sharded merge consumes.
type LevelPart<C> = (Vec<u32>, Vec<(u64, C)>);

impl<C: Clone + Eq + Hash + fmt::Debug + Send + Sync> Exploration<C> {
    /// Explores `system` from its initial configuration.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `limit` configurations are
    /// reachable.
    pub fn explore<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        limit: usize,
    ) -> Result<Self, ExploreError> {
        Self::explore_with(
            system,
            system.initial_config(),
            ExploreOptions::with_limit(limit),
        )
    }

    /// Explores `system` from an arbitrary starting configuration.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `limit` configurations are
    /// reachable.
    pub fn explore_from<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        start: C,
        limit: usize,
    ) -> Result<Self, ExploreError> {
        Self::explore_with(system, start, ExploreOptions::with_limit(limit))
    }

    /// Explores `system` from `start` under explicit [`ExploreOptions`].
    ///
    /// The result — ids, edges, flags, verdicts — is a pure function of
    /// the transition system and `start`: it does not depend on `threads`
    /// or `frontier_threshold`, which only steer how the work is executed.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `options.limit`
    /// configurations are reachable.
    pub fn explore_with<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        start: C,
        options: ExploreOptions,
    ) -> Result<Self, ExploreError> {
        match options.threads {
            1 => Self::explore_impl(system, start, options, 1),
            // The rayon default needs no dedicated pool: asking for the
            // global thread count up front avoids paying pool construction
            // on explorations whose levels never clear the parallel gate
            // (the "flood cycle" regression: thread-pool setup cost on a
            // 92-configuration space).
            0 => {
                let threads = rayon::current_num_threads();
                Self::explore_impl(system, start, options, threads)
            }
            t => {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .expect("thread pool");
                let threads = pool.current_num_threads();
                pool.install(|| Self::explore_impl(system, start, options, threads))
            }
        }
    }

    fn explore_impl<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        start: C,
        options: ExploreOptions,
        threads: usize,
    ) -> Result<Self, ExploreError> {
        let mut interner = Interner::new();
        let (start_id, _) = interner.intern(start);
        debug_assert_eq!(start_id, 0);
        let mut succ_off = vec![0u32];
        let mut succ_ids: Vec<u32> = Vec::new();
        let mut acc_flags: Vec<bool> = Vec::new();
        let mut rej_flags: Vec<bool> = Vec::new();
        let mut lo = 0usize;
        let mut depth = 0usize;
        let mut row_scratch: Vec<u32> = Vec::new();
        // A level is parallelised only when it carries enough *work*, not
        // merely enough rows: width × (observed average out-degree + 1)
        // must clear WORK_FACTOR× the frontier threshold, so low-branching
        // systems with wide-but-cheap levels stay on the sequential path.
        const WORK_FACTOR: usize = 8;
        while lo < interner.len() {
            let hi = interner.len();
            let width = hi - lo;
            let avg_out = 1 + succ_ids.len() / lo.max(1);
            let parallel = threads > 1
                && width >= options.frontier_threshold.max(2)
                && width * avg_out >= WORK_FACTOR * options.frontier_threshold;

            if parallel {
                // Frontier-parallel: split the frontier into one contiguous
                // chunk per thread; each worker generates and hashes its
                // chunk's successors into one flat reusable buffer (no
                // per-row allocation), then the sharded merge hash-conses
                // the level. The merge assigns ids in arrival order — the
                // same ids the sequential path below would produce.
                let configs = interner.configs();
                let nchunks = threads.min(width);
                let chunk = width.div_ceil(nchunks);
                let parts: Vec<LevelPart<C>> = (0..nchunks)
                    .into_par_iter()
                    .map(|k| {
                        let begin = (lo + k * chunk).min(hi);
                        let end = (begin + chunk).min(hi);
                        let mut lens: Vec<u32> = Vec::with_capacity(end - begin);
                        let mut flat: Vec<(u64, C)> = Vec::new();
                        for c in &configs[begin..end] {
                            let succs = system.successors(c);
                            lens.push(succs.len() as u32);
                            flat.extend(succs.into_iter().map(|s| (crate::intern::fx_hash(&s), s)));
                        }
                        (lens, flat)
                    })
                    .collect();
                let mut lens: Vec<u32> = Vec::with_capacity(width);
                let mut flats: Vec<Vec<(u64, C)>> = Vec::with_capacity(nchunks);
                for (l, f) in parts {
                    lens.extend_from_slice(&l);
                    flats.push(f);
                }
                let flat_ids = interner.intern_hashed_level(flats, true);
                let mut cursor = 0usize;
                for &len in &lens {
                    row_scratch.clear();
                    row_scratch.extend_from_slice(&flat_ids[cursor..cursor + len as usize]);
                    cursor += len as usize;
                    row_scratch.sort_unstable();
                    row_scratch.dedup();
                    succ_ids.extend_from_slice(&row_scratch);
                    succ_off.push(succ_ids.len() as u32);
                }
            } else {
                // Sequential: intern each successor as it is generated — no
                // level materialisation, no bucketing, one scratch row.
                for i in lo..hi {
                    let succs = system.successors(interner.get(i));
                    row_scratch.clear();
                    for s in succs {
                        row_scratch.push(interner.intern(s).0);
                    }
                    row_scratch.sort_unstable();
                    row_scratch.dedup();
                    succ_ids.extend_from_slice(&row_scratch);
                    succ_off.push(succ_ids.len() as u32);
                }
            }
            depth += 1;
            if interner.len() > options.limit {
                return Err(ExploreError::TooLarge {
                    limit: options.limit,
                    interned: interner.len(),
                    depth,
                });
            }

            // Acceptance flags for the configurations discovered this level
            // (and, on the first level, the start configuration).
            let fresh = &interner.configs()[acc_flags.len()..];
            if parallel {
                let flags: Vec<(bool, bool)> = fresh
                    .par_iter()
                    .map(|c| (system.is_accepting(c), system.is_rejecting(c)))
                    .collect();
                for (a, r) in flags {
                    acc_flags.push(a);
                    rej_flags.push(r);
                }
            } else {
                for c in fresh {
                    acc_flags.push(system.is_accepting(c));
                    rej_flags.push(system.is_rejecting(c));
                }
            }
            lo = hi;
        }
        Ok(Exploration {
            interner,
            succ_off,
            succ_ids,
            accepting: BitSet::from_bools(&acc_flags),
            rejecting: BitSet::from_bools(&rej_flags),
            rev: OnceLock::new(),
        })
    }
}

impl<C: Clone + Eq + Hash + fmt::Debug> Exploration<C> {
    /// All reachable configurations (index 0 is the start).
    pub fn configs(&self) -> &[C] {
        self.interner.configs()
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the exploration is empty (never: the start is always present).
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// The dense id of configuration `c`, if it is reachable.
    pub fn index_of(&self, c: &C) -> Option<usize> {
        self.interner.index_of(c)
    }

    /// Successor ids of configuration `i` (non-silent steps only), sorted
    /// ascending and duplicate-free.
    pub fn successors(&self, i: usize) -> &[u32] {
        &self.succ_ids[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Whether configuration `i` is accepting.
    pub fn is_accepting(&self, i: usize) -> bool {
        self.accepting.contains(i)
    }

    /// Whether configuration `i` is rejecting.
    pub fn is_rejecting(&self, i: usize) -> bool {
        self.rejecting.contains(i)
    }

    /// The reverse step relation in CSR form, built once and cached.
    fn reverse_csr(&self) -> &(Vec<u32>, Vec<u32>) {
        self.rev.get_or_init(|| {
            let n = self.len();
            let mut off = vec![0u32; n + 1];
            for &t in &self.succ_ids {
                off[t as usize + 1] += 1;
            }
            for i in 0..n {
                off[i + 1] += off[i];
            }
            let mut cursor: Vec<u32> = off[..n].to_vec();
            let mut tgt = vec![0u32; self.succ_ids.len()];
            for i in 0..n {
                for &t in self.successors(i) {
                    let c = &mut cursor[t as usize];
                    tgt[*c as usize] = i as u32;
                    *c += 1;
                }
            }
            (off, tgt)
        })
    }

    /// `Pre*` as a bitset fixpoint over the cached reverse CSR.
    fn pre_star_bits(&self, targets: &BitSet) -> BitSet {
        let (off, tgt) = self.reverse_csr();
        let mut in_set = targets.clone();
        let mut stack: Vec<u32> = targets.iter_ones().map(|i| i as u32).collect();
        while let Some(j) = stack.pop() {
            let preds = &tgt[off[j as usize] as usize..off[j as usize + 1] as usize];
            for &i in preds {
                if in_set.insert(i as usize) {
                    stack.push(i);
                }
            }
        }
        in_set
    }

    /// Configurations from which only `good`-flagged configurations are
    /// reachable: the complement of `Pre*(¬good)`.
    fn stably_bits(&self, good: &BitSet) -> BitSet {
        let mut bad = good.clone();
        bad.negate();
        let mut out = self.pre_star_bits(&bad);
        out.negate();
        out
    }

    /// Membership flags of `Pre*(targets)`: configurations that can reach a
    /// configuration flagged in `targets` (targets included).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of configurations.
    pub fn pre_star(&self, targets: &[bool]) -> Vec<bool> {
        assert_eq!(targets.len(), self.len());
        self.pre_star_bits(&BitSet::from_bools(targets)).to_bools()
    }

    /// Configurations that are *stably accepting*: every configuration
    /// reachable from them (themselves included) is accepting.
    pub fn stably_accepting(&self) -> Vec<bool> {
        self.stably_bits(&self.accepting).to_bools()
    }

    /// Configurations that are *stably rejecting*.
    pub fn stably_rejecting(&self) -> Vec<bool> {
        self.stably_bits(&self.rejecting).to_bools()
    }

    /// The verdict under pseudo-stochastic fairness.
    pub fn verdict(&self) -> Verdict {
        let acc = self.stably_bits(&self.accepting).any();
        let rej = self.stably_bits(&self.rejecting).any();
        match (acc, rej) {
            (true, true) => Verdict::Inconsistent,
            (true, false) => Verdict::Accepts,
            (false, true) => Verdict::Rejects,
            (false, false) => Verdict::NoConsensus,
        }
    }
}

/// Decides any [`TransitionSystem`] under pseudo-stochastic fairness by
/// exhaustive exploration of the **full** configuration space — this entry
/// point has no graph to take automorphisms of. Systems that expose their
/// graph (every model family in the workspace, via
/// [`NodeSymmetric`](crate::NodeSymmetric)) should prefer
/// [`decide_symmetric`](crate::decide_symmetric), which explores the orbit
/// quotient under `Aut(G)` when profitable.
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if more than `limit` configurations are
/// reachable.
#[deprecated(
    since = "0.2.0",
    note = "use `Exploration::explore(system, limit)?.verdict()` directly, \
            or `wam_certify::Decider` for machine-on-graph decisions"
)]
pub fn decide_system<T: TransitionSystem + Sync>(
    system: &T,
    limit: usize,
) -> Result<Verdict, ExploreError>
where
    T::C: Send + Sync,
{
    Ok(Exploration::explore(system, limit)?.verdict())
}

/// Decides `machine` on `graph` under pseudo-stochastic fairness and
/// exclusive selection, exactly, by exploring the configuration space —
/// reduced to its orbit quotient under `Aut(graph)` when the group is
/// non-trivial (the [`Symmetry::Auto`] policy; use
/// [`decide_symmetric`](crate::decide_symmetric) with explicit
/// [`ExploreOptions`] to control this).
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if the explored space (orbit representatives
/// under reduction) exceeds `limit` configurations.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` or `wam_certify::Decider`"
)]
pub fn decide_pseudo_stochastic<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    crate::decide(
        machine,
        graph,
        crate::Schedule::PseudoStochastic,
        crate::Backend::Auto,
        ExploreOptions::with_limit(limit),
    )
    .map(|(verdict, _)| verdict)
}

pub(crate) fn lasso_verdict<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    selection_at: impl Fn(usize) -> Selection,
    period: usize,
    limit: usize,
) -> Result<(Verdict, usize), ExploreError> {
    // The run is deterministic; its state is (configuration, step mod
    // period). Configurations are interned, so the walk stores and hashes
    // dense ids instead of cloning the configuration at every step.
    let mut interner: Interner<Config<S>> = Interner::new();
    let mut seen: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let mut trace: Vec<u32> = Vec::new();
    let mut c = Config::initial(machine, graph);
    for t in 0..limit {
        let (id, _) = interner.intern(c);
        let key = (id, (t % period) as u32);
        if let Some(&start) = seen.get(&key) {
            // Lasso closed: the loop is trace[start..t].
            let loop_ids = &trace[start..];
            let all_acc = loop_ids
                .iter()
                .all(|&i| interner.get(i as usize).is_accepting(machine));
            let all_rej = loop_ids
                .iter()
                .all(|&i| interner.get(i as usize).is_rejecting(machine));
            let verdict = if all_acc {
                Verdict::Accepts
            } else if all_rej {
                Verdict::Rejects
            } else {
                Verdict::NoConsensus
            };
            return Ok((verdict, t));
        }
        seen.insert(key, t);
        trace.push(id);
        c = interner
            .get(id as usize)
            .successor(machine, graph, &selection_at(t));
    }
    Err(ExploreError::NoLasso { limit })
}

/// Decides `machine` on `graph` along the round-robin exclusive run — a fair
/// adversarial schedule. For a consistent automaton of an adversarial class
/// this is the class verdict; `NoConsensus` witnesses failure to decide.
///
/// # Errors
///
/// [`ExploreError::NoLasso`] if the deterministic run does not become
/// periodic within `limit` steps.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` or `wam_certify::Decider`"
)]
pub fn decide_adversarial_round_robin<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    crate::decide(
        machine,
        graph,
        crate::Schedule::RoundRobin,
        crate::Backend::Auto,
        ExploreOptions::with_limit(limit),
    )
    .map(|(verdict, _)| verdict)
}

/// Decides `machine` on `graph` along the synchronous run (the unique fair
/// schedule of synchronous selection; also a fair adversarial schedule of the
/// liberal regime).
///
/// # Errors
///
/// [`ExploreError::NoLasso`] if the run does not become periodic within
/// `limit` steps.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` or `wam_certify::Decider`"
)]
pub fn decide_synchronous<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    crate::decide(
        machine,
        graph,
        crate::Schedule::Synchronous,
        crate::Backend::Auto,
        ExploreOptions::with_limit(limit),
    )
    .map(|(verdict, _)| verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output};
    use wam_graph::{generators, LabelCount};

    /// "Some node carries label x1", by flag flooding (a dAf machine).
    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    // Schedule-specific shorthands over the unified dispatch, mirroring
    // what the deprecated wrappers used to provide.
    fn ps<S: State>(m: &Machine<S>, g: &Graph, limit: usize) -> Result<Verdict, ExploreError> {
        crate::decide(
            m,
            g,
            crate::Schedule::PseudoStochastic,
            crate::Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .map(|(v, _)| v)
    }

    fn rr<S: State>(m: &Machine<S>, g: &Graph, limit: usize) -> Result<Verdict, ExploreError> {
        crate::decide(
            m,
            g,
            crate::Schedule::RoundRobin,
            crate::Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .map(|(v, _)| v)
    }

    fn sy<S: State>(m: &Machine<S>, g: &Graph, limit: usize) -> Result<Verdict, ExploreError> {
        crate::decide(
            m,
            g,
            crate::Schedule::Synchronous,
            crate::Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .map(|(v, _)| v)
    }

    fn dsys<T: TransitionSystem + Sync>(system: &T, limit: usize) -> Result<Verdict, ExploreError>
    where
        T::C: Send + Sync,
    {
        Ok(Exploration::explore(system, limit)?.verdict())
    }

    #[test]
    fn flood_accepts_when_label_present() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        assert_eq!(ps(&flood(), &g, 10_000).unwrap(), Verdict::Accepts);
        assert_eq!(rr(&flood(), &g, 10_000).unwrap(), Verdict::Accepts);
        assert_eq!(sy(&flood(), &g, 10_000).unwrap(), Verdict::Accepts);
    }

    #[test]
    fn flood_rejects_when_label_absent() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 0]));
        assert_eq!(ps(&flood(), &g, 10_000).unwrap(), Verdict::Rejects);
        assert_eq!(rr(&flood(), &g, 10_000).unwrap(), Verdict::Rejects);
    }

    #[test]
    fn exploration_counts_configs() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 1000).unwrap();
        assert!(e.len() >= 3);
        assert_eq!(e.verdict(), Verdict::Accepts);
        assert!(e.stably_accepting().iter().any(|&b| b));
    }

    #[test]
    fn limit_is_respected() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![5, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let err = Exploration::explore(&sys, 2).unwrap_err();
        // The diagnostic fields surface in the Display rendering that
        // `decide_*` callers propagate.
        let msg = err.to_string();
        assert!(msg.contains("limit of 2"), "{msg}");
        assert!(msg.contains("interned"), "{msg}");
        assert!(msg.contains("depth"), "{msg}");
        match err {
            ExploreError::TooLarge {
                limit,
                interned,
                depth,
            } => {
                assert_eq!(limit, 2);
                assert!(interned > limit, "interned count must exceed the limit");
                assert!(depth >= 1, "at least one BFS level completed");
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn toggling_machine_has_no_consensus() {
        let m = Machine::new(
            1,
            |_| false,
            |&s, _| !s,
            |&s| if s { Output::Accept } else { Output::Reject },
        );
        let g = generators::cycle(3);
        assert_eq!(sy(&m, &g, 10_000).unwrap(), Verdict::NoConsensus);
        assert_eq!(ps(&m, &g, 10_000).unwrap(), Verdict::NoConsensus);
    }

    #[test]
    fn first_mover_locks_consensus() {
        // A node moving with all-undecided neighbours locks Accept, and the
        // lock floods: every fair run accepts.
        let m = Machine::new(
            1,
            |_| 0u8,
            |&s, _| if s == 0 { 1 } else { s },
            |&s| match s {
                1 => Output::Accept,
                _ => Output::Neutral,
            },
        );
        let g = generators::cycle(3);
        assert_eq!(ps(&m, &g, 10_000).unwrap(), Verdict::Accepts);
    }

    #[test]
    fn seeded_disagreement_never_reaches_consensus() {
        // Locked accept-seed and reject-seed coexist: no consensus possible.
        let m = Machine::new(
            1,
            |l| if l.0 == 0 { 1u8 } else { 2u8 },
            |&s, _| s,
            |&s| match s {
                1 => Output::Accept,
                _ => Output::Reject,
            },
        );
        let g = generators::labelled_line(&LabelCount::from_vec(vec![1, 2]));
        assert_eq!(ps(&m, &g, 10_000).unwrap(), Verdict::NoConsensus);
    }

    #[test]
    fn liberal_and_exclusive_verdicts_agree() {
        // The [16] selection collapse, checked exactly on small inputs.
        let m = flood();
        for counts in [vec![3u64, 1], vec![4, 0], vec![2, 2]] {
            let g = generators::labelled_cycle(&LabelCount::from_vec(counts.clone()));
            let excl = dsys(&ExclusiveSystem::new(&m, &g), 1_000_000).unwrap();
            let lib = dsys(&LiberalSystem::new(&m, &g), 1_000_000).unwrap();
            assert_eq!(excl, lib, "{counts:?}");
        }
    }

    #[test]
    fn liberal_successors_include_simultaneous_moves() {
        // On a t-f-f-t line, one liberal step can flood both inner nodes.
        let m = flood();
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 2]));
        let sys = LiberalSystem::new(&m, &g);
        // Initial: labels x0 x0 x1 x1 → false false true true.
        let c0 = sys.initial_config();
        let both = Config::from_states(vec![false, true, true, true]);
        let succ = sys.successors(&c0);
        assert!(succ.contains(&both), "{succ:?}");
    }

    #[test]
    fn lasso_limit_error() {
        let m = Machine::new(1, |_| 0u64, |&s, _| s + 1, |_| Output::Neutral);
        let g = generators::cycle(3);
        let err = sy(&m, &g, 50).unwrap_err();
        assert_eq!(err, ExploreError::NoLasso { limit: 50 });
    }

    #[test]
    fn inconsistent_machine_detected() {
        // First mover's identity decides the consensus: node ids are not
        // visible, but labels are; make label-0 nodes lock Accept and label-1
        // nodes lock Reject when moving first, with locks flooding.
        let m = Machine::new(
            1,
            |l| if l.0 == 0 { 10u8 } else { 20u8 },
            |&s, n| {
                if s >= 10 {
                    // undecided (10 = would lock accept, 20 = would lock reject)
                    if n.exists(|&t| t == 1) {
                        1
                    } else if n.exists(|&t| t == 2) {
                        2
                    } else if s == 10 {
                        1
                    } else {
                        2
                    }
                } else {
                    s
                }
            },
            |&s| match s {
                1 => Output::Accept,
                2 => Output::Reject,
                _ => Output::Neutral,
            },
        );
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
        assert_eq!(ps(&m, &g, 100_000).unwrap(), Verdict::Inconsistent);
    }

    #[test]
    fn index_of_finds_every_reachable_config() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 10_000).unwrap();
        for (i, c) in e.configs().iter().enumerate() {
            assert_eq!(e.index_of(c), Some(i));
        }
        let unreachable = Config::from_states(vec![true, false, true, false]);
        assert_eq!(e.index_of(&unreachable), None);
    }

    #[test]
    fn successor_ids_are_sorted_and_unique() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 10_000).unwrap();
        for i in 0..e.len() {
            let row = e.successors(i);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i}: {row:?}");
            for &j in row {
                assert!((j as usize) < e.len());
            }
        }
    }

    #[test]
    fn parallel_options_give_identical_exploration() {
        // Same ids, edges, flags and verdict regardless of thread count or
        // frontier threshold — the engine is deterministic by construction.
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 2]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let seq = Exploration::explore_with(
            &sys,
            sys.initial_config(),
            ExploreOptions {
                threads: 1,
                ..ExploreOptions::with_limit(100_000)
            },
        )
        .unwrap();
        let par = Exploration::explore_with(
            &sys,
            sys.initial_config(),
            ExploreOptions {
                threads: 4,
                frontier_threshold: 1,
                ..ExploreOptions::with_limit(100_000)
            },
        )
        .unwrap();
        assert_eq!(seq.configs(), par.configs());
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            assert_eq!(seq.successors(i), par.successors(i));
            assert_eq!(seq.is_accepting(i), par.is_accepting(i));
            assert_eq!(seq.is_rejecting(i), par.is_rejecting(i));
        }
        assert_eq!(seq.verdict(), par.verdict());
    }
}
