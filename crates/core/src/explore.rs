//! Exact decision procedures on configuration graphs.
//!
//! On small graphs the configuration space of a machine (plain or extended)
//! is finite and explorable, which lets us decide acceptance *exactly*
//! instead of sampling:
//!
//! * **Pseudo-stochastic fairness**: the paper's own characterisation (used
//!   in Prop. D.2) — the automaton accepts from `C₀` iff a *stably
//!   accepting* configuration is reachable, i.e. a `C` all of whose reachable
//!   configurations are accepting. [`Exploration`] computes reachability plus
//!   the reverse closure, for any [`TransitionSystem`].
//! * **Adversarial fairness**: a consistent automaton gives the same verdict
//!   on every fair run, so it suffices to evaluate one concrete fair run.
//!   Round-robin and synchronous runs are deterministic and therefore
//!   ultimately periodic; [`decide_adversarial_round_robin`] and
//!   [`decide_synchronous`] detect the lasso and read the verdict off the
//!   loop. A `NoConsensus` result on these runs witnesses that the machine
//!   is *not* a distributed automaton of the corresponding class for this
//!   input (no stable consensus forms).
//!
//! Extended models (weak broadcasts, absence detection, rendez-vous, strong
//! broadcasts) implement [`TransitionSystem`] in `wam-extensions` and reuse
//! the same machinery.

use crate::{Config, Machine, Selection, State};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::Hash;
use wam_graph::Graph;

/// Outcome of an exact decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Every fair run stabilises to an accepting consensus.
    Accepts,
    /// Every fair run stabilises to a rejecting consensus.
    Rejects,
    /// The evaluated run(s) do not stabilise to a consensus: the machine does
    /// not decide this input (consistency fails or consensus never forms).
    NoConsensus,
    /// Both a stably accepting and a stably rejecting configuration are
    /// reachable: the machine violates the consistency condition outright.
    Inconsistent,
}

impl Verdict {
    /// Whether the verdict is `Accepts`.
    pub fn is_accepting(self) -> bool {
        self == Verdict::Accepts
    }

    /// Whether the verdict is `Rejects`.
    pub fn is_rejecting(self) -> bool {
        self == Verdict::Rejects
    }

    /// `Some(true)` / `Some(false)` for accept / reject, `None` otherwise.
    pub fn decided(self) -> Option<bool> {
        match self {
            Verdict::Accepts => Some(true),
            Verdict::Rejects => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Accepts => "accepts",
            Verdict::Rejects => "rejects",
            Verdict::NoConsensus => "no consensus",
            Verdict::Inconsistent => "inconsistent",
        };
        f.write_str(s)
    }
}

/// Error from an exact decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The reachable configuration space exceeded the caller's limit.
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A deterministic run did not close its lasso within the step limit.
    NoLasso {
        /// The step limit that was exhausted.
        limit: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooLarge { limit } => {
                write!(f, "configuration space exceeds limit of {limit}")
            }
            ExploreError::NoLasso { limit } => write!(f, "no lasso within {limit} steps"),
        }
    }
}

impl Error for ExploreError {}

/// A finite-branching transition system over hashable configurations — the
/// abstraction all exact deciders run on.
///
/// Plain machines (exclusive selection) implement this via
/// [`ExclusiveSystem`]; the extended models of `wam-extensions` provide their
/// own implementations whose `successors` enumerate the scheduler's
/// nondeterministic choices (broadcast initiator sets, absence-detection
/// covers, rendez-vous pairs, …).
pub trait TransitionSystem {
    /// The configuration type.
    type C: Clone + Eq + Hash + fmt::Debug;

    /// The initial configuration.
    fn initial_config(&self) -> Self::C;

    /// All configurations reachable in one **non-silent** step.
    fn successors(&self, c: &Self::C) -> Vec<Self::C>;

    /// Whether every node is in an accepting state.
    fn is_accepting(&self, c: &Self::C) -> bool;

    /// Whether every node is in a rejecting state.
    fn is_rejecting(&self, c: &Self::C) -> bool;
}

/// The exclusive-selection transition system of a plain machine on a graph:
/// one node steps at a time.
#[derive(Debug)]
pub struct ExclusiveSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
}

impl<'a, S: State> ExclusiveSystem<'a, S> {
    /// Wraps a machine and a graph.
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Self {
        ExclusiveSystem { machine, graph }
    }
}

impl<S: State> TransitionSystem for ExclusiveSystem<'_, S> {
    type C = Config<S>;

    fn initial_config(&self) -> Config<S> {
        Config::initial(self.machine, self.graph)
    }

    fn successors(&self, c: &Config<S>) -> Vec<Config<S>> {
        let mut out = Vec::new();
        for v in self.graph.nodes() {
            let stepped = c.stepped_state(self.machine, self.graph, v);
            if stepped == *c.state(v) {
                continue; // silent
            }
            let mut next = c.states().to_vec();
            next[v] = stepped;
            let next = Config::from_states(next);
            if !out.contains(&next) {
                out.push(next);
            }
        }
        out
    }

    fn is_accepting(&self, c: &Config<S>) -> bool {
        c.is_accepting(self.machine)
    }

    fn is_rejecting(&self, c: &Config<S>) -> bool {
        c.is_rejecting(self.machine)
    }
}

/// The liberal-selection transition system of a plain machine: one step may
/// activate **any** nonempty node subset simultaneously. The successor set
/// is exponential in `|V|`, so this is reserved for the smallest graphs —
/// its purpose is to check the [16] selection-collapse exactly:
/// verdicts under liberal selection match those under exclusive selection.
#[derive(Debug)]
pub struct LiberalSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
}

impl<'a, S: State> LiberalSystem<'a, S> {
    /// Wraps a machine and a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 16 nodes (2¹⁶ selections per step
    /// is the sanity bound).
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Self {
        assert!(
            graph.node_count() <= 16,
            "liberal exploration is limited to 16 nodes"
        );
        LiberalSystem { machine, graph }
    }
}

impl<S: State> TransitionSystem for LiberalSystem<'_, S> {
    type C = Config<S>;

    fn initial_config(&self) -> Config<S> {
        Config::initial(self.machine, self.graph)
    }

    fn successors(&self, c: &Config<S>) -> Vec<Config<S>> {
        let n = self.graph.node_count();
        // Precompute each node's stepped state once; a simultaneous step of
        // set S applies exactly these (all against the same pre-step view).
        let stepped: Vec<S> = self
            .graph
            .nodes()
            .map(|v| c.stepped_state(self.machine, self.graph, v))
            .collect();
        let moving: Vec<usize> = (0..n).filter(|&v| stepped[v] != *c.state(v)).collect();
        // Selections that differ only on silent nodes yield the same config,
        // so it suffices to enumerate subsets of the moving nodes.
        let mut out = Vec::new();
        for mask in 1usize..(1 << moving.len()) {
            let mut states = c.states().to_vec();
            for (i, &v) in moving.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    states[v] = stepped[v].clone();
                }
            }
            let next = Config::from_states(states);
            if !out.contains(&next) {
                out.push(next);
            }
        }
        out
    }

    fn is_accepting(&self, c: &Config<S>) -> bool {
        c.is_accepting(self.machine)
    }

    fn is_rejecting(&self, c: &Config<S>) -> bool {
        c.is_rejecting(self.machine)
    }
}

/// The explored configuration graph of a [`TransitionSystem`]: every
/// configuration reachable from the initial one, with the non-silent step
/// relation, acceptance flags, and `Pre*` machinery.
#[derive(Debug)]
pub struct Exploration<C> {
    configs: Vec<C>,
    /// `succs[i]` = indices reachable from `i` in one non-silent step.
    succs: Vec<Vec<usize>>,
    accepting: Vec<bool>,
    rejecting: Vec<bool>,
}

impl<C: Clone + Eq + Hash + fmt::Debug> Exploration<C> {
    /// Explores `system` from its initial configuration.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `limit` configurations are
    /// reachable.
    pub fn explore<T: TransitionSystem<C = C>>(system: &T, limit: usize) -> Result<Self, ExploreError> {
        Self::explore_from(system, system.initial_config(), limit)
    }

    /// Explores `system` from an arbitrary starting configuration.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `limit` configurations are
    /// reachable.
    pub fn explore_from<T: TransitionSystem<C = C>>(
        system: &T,
        start: C,
        limit: usize,
    ) -> Result<Self, ExploreError> {
        let mut index: HashMap<C, usize> = HashMap::new();
        let mut configs = vec![start.clone()];
        index.insert(start, 0);
        let mut succs: Vec<Vec<usize>> = Vec::new();
        let mut frontier = 0usize;
        while frontier < configs.len() {
            let current = configs[frontier].clone();
            let mut out = Vec::new();
            for next in system.successors(&current) {
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if configs.len() >= limit {
                            return Err(ExploreError::TooLarge { limit });
                        }
                        let id = configs.len();
                        configs.push(next.clone());
                        index.insert(next, id);
                        id
                    }
                };
                if !out.contains(&id) {
                    out.push(id);
                }
            }
            succs.push(out);
            frontier += 1;
        }
        let accepting = configs.iter().map(|c| system.is_accepting(c)).collect();
        let rejecting = configs.iter().map(|c| system.is_rejecting(c)).collect();
        Ok(Exploration {
            configs,
            succs,
            accepting,
            rejecting,
        })
    }

    /// All reachable configurations (index 0 is the start).
    pub fn configs(&self) -> &[C] {
        &self.configs
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the exploration is empty (never: the start is always present).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Successor indices of configuration `i` (non-silent steps only).
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Whether configuration `i` is accepting.
    pub fn is_accepting(&self, i: usize) -> bool {
        self.accepting[i]
    }

    /// Whether configuration `i` is rejecting.
    pub fn is_rejecting(&self, i: usize) -> bool {
        self.rejecting[i]
    }

    /// Membership flags of `Pre*(targets)`: configurations that can reach a
    /// configuration flagged in `targets` (targets included).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of configurations.
    pub fn pre_star(&self, targets: &[bool]) -> Vec<bool> {
        assert_eq!(targets.len(), self.configs.len());
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.configs.len()];
        for (i, out) in self.succs.iter().enumerate() {
            for &j in out {
                preds[j].push(i);
            }
        }
        let mut in_set = targets.to_vec();
        let mut stack: Vec<usize> = in_set
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        while let Some(j) = stack.pop() {
            for &i in &preds[j] {
                if !in_set[i] {
                    in_set[i] = true;
                    stack.push(i);
                }
            }
        }
        in_set
    }

    /// Configurations that are *stably accepting*: every configuration
    /// reachable from them (themselves included) is accepting.
    pub fn stably_accepting(&self) -> Vec<bool> {
        let non_accepting: Vec<bool> = self.accepting.iter().map(|&a| !a).collect();
        self.pre_star(&non_accepting).iter().map(|&b| !b).collect()
    }

    /// Configurations that are *stably rejecting*.
    pub fn stably_rejecting(&self) -> Vec<bool> {
        let non_rejecting: Vec<bool> = self.rejecting.iter().map(|&r| !r).collect();
        self.pre_star(&non_rejecting).iter().map(|&b| !b).collect()
    }

    /// The verdict under pseudo-stochastic fairness.
    pub fn verdict(&self) -> Verdict {
        let acc = self.stably_accepting().iter().any(|&b| b);
        let rej = self.stably_rejecting().iter().any(|&b| b);
        match (acc, rej) {
            (true, true) => Verdict::Inconsistent,
            (true, false) => Verdict::Accepts,
            (false, true) => Verdict::Rejects,
            (false, false) => Verdict::NoConsensus,
        }
    }
}

/// Decides any [`TransitionSystem`] under pseudo-stochastic fairness by
/// exhaustive exploration.
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if more than `limit` configurations are
/// reachable.
pub fn decide_system<T: TransitionSystem>(system: &T, limit: usize) -> Result<Verdict, ExploreError> {
    Ok(Exploration::explore(system, limit)?.verdict())
}

/// Decides `machine` on `graph` under pseudo-stochastic fairness and
/// exclusive selection, exactly, by exploring the configuration space.
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if more than `limit` configurations are
/// reachable.
pub fn decide_pseudo_stochastic<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    decide_system(&ExclusiveSystem::new(machine, graph), limit)
}

fn decide_lasso<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    selection_at: impl Fn(usize) -> Selection,
    period: usize,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    // The run is deterministic; its state is (configuration, step mod period).
    let mut seen: HashMap<(Config<S>, usize), usize> = HashMap::new();
    let mut trace: Vec<Config<S>> = Vec::new();
    let mut c = Config::initial(machine, graph);
    for t in 0..limit {
        let key = (c.clone(), t % period);
        if let Some(&start) = seen.get(&key) {
            // Lasso closed: the loop is trace[start..t].
            let loop_configs = &trace[start..];
            let all_acc = loop_configs.iter().all(|c| c.is_accepting(machine));
            let all_rej = loop_configs.iter().all(|c| c.is_rejecting(machine));
            return Ok(if all_acc {
                Verdict::Accepts
            } else if all_rej {
                Verdict::Rejects
            } else {
                Verdict::NoConsensus
            });
        }
        seen.insert(key, t);
        trace.push(c.clone());
        c = c.successor(machine, graph, &selection_at(t));
    }
    Err(ExploreError::NoLasso { limit })
}

/// Decides `machine` on `graph` along the round-robin exclusive run — a fair
/// adversarial schedule. For a consistent automaton of an adversarial class
/// this is the class verdict; `NoConsensus` witnesses failure to decide.
///
/// # Errors
///
/// [`ExploreError::NoLasso`] if the deterministic run does not become
/// periodic within `limit` steps.
pub fn decide_adversarial_round_robin<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    let n = graph.node_count();
    decide_lasso(machine, graph, |t| Selection::exclusive(t % n), n, limit)
}

/// Decides `machine` on `graph` along the synchronous run (the unique fair
/// schedule of synchronous selection; also a fair adversarial schedule of the
/// liberal regime).
///
/// # Errors
///
/// [`ExploreError::NoLasso`] if the run does not become periodic within
/// `limit` steps.
pub fn decide_synchronous<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    let all = Selection::all(graph);
    decide_lasso(machine, graph, |_| all.clone(), 1, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output};
    use wam_graph::{generators, LabelCount};

    /// "Some node carries label x1", by flag flooding (a dAf machine).
    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn flood_accepts_when_label_present() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        assert_eq!(
            decide_pseudo_stochastic(&flood(), &g, 10_000).unwrap(),
            Verdict::Accepts
        );
        assert_eq!(
            decide_adversarial_round_robin(&flood(), &g, 10_000).unwrap(),
            Verdict::Accepts
        );
        assert_eq!(
            decide_synchronous(&flood(), &g, 10_000).unwrap(),
            Verdict::Accepts
        );
    }

    #[test]
    fn flood_rejects_when_label_absent() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 0]));
        assert_eq!(
            decide_pseudo_stochastic(&flood(), &g, 10_000).unwrap(),
            Verdict::Rejects
        );
        assert_eq!(
            decide_adversarial_round_robin(&flood(), &g, 10_000).unwrap(),
            Verdict::Rejects
        );
    }

    #[test]
    fn exploration_counts_configs() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 1000).unwrap();
        assert!(e.len() >= 3);
        assert_eq!(e.verdict(), Verdict::Accepts);
        assert!(e.stably_accepting().iter().any(|&b| b));
    }

    #[test]
    fn limit_is_respected() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![5, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let err = Exploration::explore(&sys, 2).unwrap_err();
        assert_eq!(err, ExploreError::TooLarge { limit: 2 });
    }

    #[test]
    fn toggling_machine_has_no_consensus() {
        let m = Machine::new(
            1,
            |_| false,
            |&s, _| !s,
            |&s| if s { Output::Accept } else { Output::Reject },
        );
        let g = generators::cycle(3);
        assert_eq!(
            decide_synchronous(&m, &g, 10_000).unwrap(),
            Verdict::NoConsensus
        );
        assert_eq!(
            decide_pseudo_stochastic(&m, &g, 10_000).unwrap(),
            Verdict::NoConsensus
        );
    }

    #[test]
    fn first_mover_locks_consensus() {
        // A node moving with all-undecided neighbours locks Accept, and the
        // lock floods: every fair run accepts.
        let m = Machine::new(
            1,
            |_| 0u8,
            |&s, n| {
                if s == 0 {
                    if n.exists(|&t| t == 1) {
                        1
                    } else {
                        1
                    }
                } else {
                    s
                }
            },
            |&s| match s {
                1 => Output::Accept,
                _ => Output::Neutral,
            },
        );
        let g = generators::cycle(3);
        assert_eq!(
            decide_pseudo_stochastic(&m, &g, 10_000).unwrap(),
            Verdict::Accepts
        );
    }

    #[test]
    fn seeded_disagreement_never_reaches_consensus() {
        // Locked accept-seed and reject-seed coexist: no consensus possible.
        let m = Machine::new(
            1,
            |l| if l.0 == 0 { 1u8 } else { 2u8 },
            |&s, _| s,
            |&s| match s {
                1 => Output::Accept,
                _ => Output::Reject,
            },
        );
        let g = generators::labelled_line(&LabelCount::from_vec(vec![1, 2]));
        assert_eq!(
            decide_pseudo_stochastic(&m, &g, 10_000).unwrap(),
            Verdict::NoConsensus
        );
    }

    #[test]
    fn liberal_and_exclusive_verdicts_agree() {
        // The [16] selection collapse, checked exactly on small inputs.
        let m = flood();
        for counts in [vec![3u64, 1], vec![4, 0], vec![2, 2]] {
            let g = generators::labelled_cycle(&LabelCount::from_vec(counts.clone()));
            let excl = decide_system(&ExclusiveSystem::new(&m, &g), 1_000_000).unwrap();
            let lib = decide_system(&LiberalSystem::new(&m, &g), 1_000_000).unwrap();
            assert_eq!(excl, lib, "{counts:?}");
        }
    }

    #[test]
    fn liberal_successors_include_simultaneous_moves() {
        // On a t-f-f-t line, one liberal step can flood both inner nodes.
        let m = flood();
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 2]));
        let sys = LiberalSystem::new(&m, &g);
        // Initial: labels x0 x0 x1 x1 → false false true true.
        let c0 = sys.initial_config();
        let both = Config::from_states(vec![false, true, true, true]);
        let succ = sys.successors(&c0);
        assert!(succ.contains(&both), "{succ:?}");
    }

    #[test]
    fn lasso_limit_error() {
        let m = Machine::new(1, |_| 0u64, |&s, _| s + 1, |_| Output::Neutral);
        let g = generators::cycle(3);
        let err = decide_synchronous(&m, &g, 50).unwrap_err();
        assert_eq!(err, ExploreError::NoLasso { limit: 50 });
    }

    #[test]
    fn inconsistent_machine_detected() {
        // First mover's identity decides the consensus: node ids are not
        // visible, but labels are; make label-0 nodes lock Accept and label-1
        // nodes lock Reject when moving first, with locks flooding.
        let m = Machine::new(
            1,
            |l| if l.0 == 0 { 10u8 } else { 20u8 },
            |&s, n| {
                if s >= 10 {
                    // undecided (10 = would lock accept, 20 = would lock reject)
                    if n.exists(|&t| t == 1) {
                        1
                    } else if n.exists(|&t| t == 2) {
                        2
                    } else if s == 10 {
                        1
                    } else {
                        2
                    }
                } else {
                    s
                }
            },
            |&s| match s {
                1 => Output::Accept,
                2 => Output::Reject,
                _ => Output::Neutral,
            },
        );
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
        assert_eq!(
            decide_pseudo_stochastic(&m, &g, 100_000).unwrap(),
            Verdict::Inconsistent
        );
    }
}
