//! Exact decision procedures on configuration graphs.
//!
//! On small graphs the configuration space of a machine (plain or extended)
//! is finite and explorable, which lets us decide acceptance *exactly*
//! instead of sampling:
//!
//! * **Pseudo-stochastic fairness**: the paper's own characterisation (used
//!   in Prop. D.2) — the automaton accepts from `C₀` iff a *stably
//!   accepting* configuration is reachable, i.e. a `C` all of whose reachable
//!   configurations are accepting. [`Exploration`] computes reachability plus
//!   the reverse closure, for any [`TransitionSystem`].
//! * **Adversarial fairness**: a consistent automaton gives the same verdict
//!   on every fair run, so it suffices to evaluate one concrete fair run.
//!   Round-robin and synchronous runs are deterministic and therefore
//!   ultimately periodic; [`decide_adversarial_round_robin`] and
//!   [`decide_synchronous`] detect the lasso and read the verdict off the
//!   loop. A `NoConsensus` result on these runs witnesses that the machine
//!   is *not* a distributed automaton of the corresponding class for this
//!   input (no stable consensus forms).
//!
//! Extended models (weak broadcasts, absence detection, rendez-vous, strong
//! broadcasts) implement [`TransitionSystem`] in `wam-extensions` and reuse
//! the same machinery.
//!
//! # Engine architecture
//!
//! The explorer is a level-synchronous BFS over hash-consed configurations:
//!
//! * every configuration is interned exactly once into a dense `u32` id by
//!   a sharded FxHash [`Interner`](crate::Interner) — BFS, lasso detection
//!   and all `Pre*` machinery pass ids, never configuration values;
//! * when a frontier is at least [`ExploreOptions::frontier_threshold`]
//!   wide **and** its estimated work (width × observed average out-degree)
//!   clears a multiple of that threshold (and more than one thread is
//!   available), successor generation — chunked per thread, hashed at the
//!   source, flat buffers instead of per-row vectors — and per-shard
//!   deduplication run in parallel under `rayon`; below the gate,
//!   successors are interned item-by-item with no bucketing or thread
//!   overhead, and explorations whose levels never clear it skip thread-
//!   pool construction entirely. The parallel merge assigns ids in arrival
//!   order by construction, so ids, edges and verdicts are bit-identical
//!   either way. Above the gate the merge is additionally *pipelined*: a
//!   generator thread hashes the next batch of successors while the main
//!   thread deduplicates the previous one against the sharded interner;
//! * the step relation is stored as a CSR (offsets + `u32` targets); past
//!   [`ExploreOptions::edge_encoding`]'s auto threshold the target lists
//!   switch to a delta/varint encoding behind [`Exploration::successors`],
//!   and an [`ExploreOptions::memory_budget`] spills encoded segments to a
//!   temp file so footprint-refused spaces become *slower* instead of
//!   `TooLarge`;
//! * [`Exploration::pre_star`] and the stable-consensus queries run bitset
//!   fixpoints over a lazily built, cached reverse CSR, so
//!   [`Exploration::verdict`] transposes the edge list once, not twice;
//!   both the transpose (chunked counting sort) and wide fixpoint frontiers
//!   (per-chunk local sets merged by word-level union) parallelise under
//!   the same work gate, and spilled explorations replace the reverse CSR
//!   with repeated streaming forward passes over the on-disk relation;
//! * successor id lists are deduplicated by sort + dedup instead of the
//!   quadratic membership scans of the original implementation.

use crate::bitset::BitSet;
use crate::edges::{EdgeBuilder, EdgeStore};
pub use crate::edges::{EdgeEncoding, SuccRow};
use crate::{Config, Interner, Machine, Selection, State};
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::error::Error;
use std::fmt;
use std::hash::Hash;
use std::sync::OnceLock;
use wam_graph::Graph;

/// Outcome of an exact decision procedure.
///
/// The type is `#[must_use]` (rather than each decider function, which
/// would trip `clippy::double_must_use` on the `Result`-returning ones):
/// computing a verdict is always expensive, so dropping one is a bug.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Every fair run stabilises to an accepting consensus.
    Accepts,
    /// Every fair run stabilises to a rejecting consensus.
    Rejects,
    /// The evaluated run(s) do not stabilise to a consensus: the machine does
    /// not decide this input (consistency fails or consensus never forms).
    NoConsensus,
    /// Both a stably accepting and a stably rejecting configuration are
    /// reachable: the machine violates the consistency condition outright.
    Inconsistent,
}

impl Verdict {
    /// Whether the verdict is `Accepts`.
    pub fn is_accepting(self) -> bool {
        self == Verdict::Accepts
    }

    /// Whether the verdict is `Rejects`.
    pub fn is_rejecting(self) -> bool {
        self == Verdict::Rejects
    }

    /// `Some(true)` / `Some(false)` for accept / reject, `None` otherwise.
    pub fn decided(self) -> Option<bool> {
        match self {
            Verdict::Accepts => Some(true),
            Verdict::Rejects => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Accepts => "accepts",
            Verdict::Rejects => "rejects",
            Verdict::NoConsensus => "no consensus",
            Verdict::Inconsistent => "inconsistent",
        };
        f.write_str(s)
    }
}

/// Error from an exact decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The reachable configuration space exceeded the caller's limit.
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
        /// How many configurations had been interned when the limit
        /// tripped (always `> limit`; tells callers how far over budget
        /// the level that tripped it went).
        interned: usize,
        /// The number of completed BFS levels — the depth at which the
        /// exploration was abandoned (level 0 is the start configuration
        /// alone, so after the first expansion `depth` is 1).
        depth: usize,
    },
    /// A deterministic run did not close its lasso within the step limit.
    NoLasso {
        /// The step limit that was exhausted.
        limit: usize,
    },
    /// An explicitly requested backend does not apply to the input (e.g.
    /// [`Backend::Counter`](crate::Backend::Counter) on a graph whose twin
    /// partition is all singletons and which is not a cycle). `Auto` never
    /// produces this: it falls back instead.
    Unsupported {
        /// Human-readable reason for the refusal.
        reason: String,
    },
    /// The out-of-core spill path (enabled by
    /// [`ExploreOptions::memory_budget`]) failed on an I/O error while
    /// writing or reading its temp file.
    Spill {
        /// The rendered I/O error.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooLarge {
                limit,
                interned,
                depth,
            } => {
                write!(
                    f,
                    "configuration space exceeds limit of {limit} \
                     ({interned} configurations interned, BFS depth {depth})"
                )
            }
            ExploreError::NoLasso { limit } => write!(f, "no lasso within {limit} steps"),
            ExploreError::Unsupported { reason } => {
                write!(f, "requested backend is unsupported here: {reason}")
            }
            ExploreError::Spill { message } => {
                write!(f, "edge spill file I/O failed: {message}")
            }
        }
    }
}

impl Error for ExploreError {}

/// A finite-branching transition system over hashable configurations — the
/// abstraction all exact deciders run on.
///
/// Plain machines (exclusive selection) implement this via
/// [`ExclusiveSystem`]; the extended models of `wam-extensions` provide their
/// own implementations whose `successors` enumerate the scheduler's
/// nondeterministic choices (broadcast initiator sets, absence-detection
/// covers, rendez-vous pairs, …).
pub trait TransitionSystem {
    /// The configuration type.
    type C: Clone + Eq + Hash + fmt::Debug;

    /// The initial configuration.
    fn initial_config(&self) -> Self::C;

    /// All configurations reachable in one **non-silent** step. The list
    /// may contain duplicates; the exploration engine deduplicates after
    /// interning (sort + dedup on dense ids), which is cheaper than
    /// scanning for duplicates configuration-by-configuration here.
    fn successors(&self, c: &Self::C) -> Vec<Self::C>;

    /// Writes the successors of `c` into a reusable buffer instead of
    /// returning a fresh `Vec` — the engine's allocation-free frontier
    /// path. Must emit exactly the configurations [`successors`] returns,
    /// **in the same order** (the interner assigns dense ids in arrival
    /// order, so ordering is part of the observable contract).
    ///
    /// The default forwards to [`successors`]; the model families in this
    /// workspace override it natively (and implement `successors` on top),
    /// so steady-state exploration reuses one buffer per worker and
    /// performs no per-configuration `Vec` allocation.
    ///
    /// Implementations must only push — the engine clears or drains the
    /// buffer between calls and relies on its retained capacity.
    ///
    /// [`successors`]: Self::successors
    fn successors_into(&self, c: &Self::C, out: &mut SuccBuf<Self::C>) {
        out.items.extend(self.successors(c));
    }

    /// Whether every node is in an accepting state.
    fn is_accepting(&self, c: &Self::C) -> bool;

    /// Whether every node is in a rejecting state.
    fn is_rejecting(&self, c: &Self::C) -> bool;
}

/// A reusable successor buffer for [`TransitionSystem::successors_into`]:
/// a growable list whose capacity survives across frontier rows, so the
/// BFS level loops allocate successor storage once per worker instead of
/// once per configuration.
#[derive(Debug, Clone)]
pub struct SuccBuf<C> {
    items: Vec<C>,
}

impl<C> Default for SuccBuf<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> SuccBuf<C> {
    /// An empty buffer.
    pub fn new() -> Self {
        SuccBuf { items: Vec::new() }
    }

    /// Appends one successor.
    #[inline]
    pub fn push(&mut self, c: C) {
        self.items.push(c);
    }

    /// Number of buffered successors.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Clears the buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The buffered successors, in push order.
    pub fn as_slice(&self) -> &[C] {
        &self.items
    }

    /// Moves the successors out, leaving the buffer empty with its
    /// capacity retained — how the engine hands configurations to the
    /// interner without copying them.
    pub fn drain(&mut self) -> std::vec::Drain<'_, C> {
        self.items.drain(..)
    }

    /// Consumes the buffer into a plain `Vec` (the `successors` adapter
    /// used by systems whose native implementation is `successors_into`).
    pub fn into_vec(self) -> Vec<C> {
        self.items
    }
}

impl<C: PartialEq> SuccBuf<C> {
    /// Whether `c` is already buffered (families that deduplicate
    /// configuration-by-configuration keep their semantics through this).
    pub fn contains(&self, c: &C) -> bool {
        self.items.contains(c)
    }
}

/// The exclusive-selection transition system of a plain machine on a graph:
/// one node steps at a time.
#[derive(Debug)]
pub struct ExclusiveSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
}

impl<'a, S: State> ExclusiveSystem<'a, S> {
    /// Wraps a machine and a graph.
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Self {
        ExclusiveSystem { machine, graph }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'a Machine<S> {
        self.machine
    }

    /// The communication graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }
}

impl<S: State> TransitionSystem for ExclusiveSystem<'_, S> {
    type C = Config<S>;

    fn initial_config(&self) -> Config<S> {
        Config::initial(self.machine, self.graph)
    }

    fn successors(&self, c: &Config<S>) -> Vec<Config<S>> {
        let mut out = SuccBuf::new();
        self.successors_into(c, &mut out);
        out.into_vec()
    }

    fn successors_into(&self, c: &Config<S>, out: &mut SuccBuf<Config<S>>) {
        for v in self.graph.nodes() {
            let stepped = c.stepped_state(self.machine, self.graph, v);
            if stepped == *c.state(v) {
                continue; // silent
            }
            let mut next = c.states().to_vec();
            next[v] = stepped;
            out.push(Config::from_states(next));
        }
    }

    fn is_accepting(&self, c: &Config<S>) -> bool {
        c.is_accepting(self.machine)
    }

    fn is_rejecting(&self, c: &Config<S>) -> bool {
        c.is_rejecting(self.machine)
    }
}

/// The liberal-selection transition system of a plain machine: one step may
/// activate **any** nonempty node subset simultaneously. The successor set
/// is exponential in `|V|`, so this is reserved for the smallest graphs —
/// its purpose is to check the \[16\] selection-collapse exactly:
/// verdicts under liberal selection match those under exclusive selection.
#[derive(Debug)]
pub struct LiberalSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
}

impl<'a, S: State> LiberalSystem<'a, S> {
    /// Wraps a machine and a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 16 nodes (2¹⁶ selections per step
    /// is the sanity bound).
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Self {
        assert!(
            graph.node_count() <= 16,
            "liberal exploration is limited to 16 nodes"
        );
        LiberalSystem { machine, graph }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'a Machine<S> {
        self.machine
    }

    /// The communication graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }
}

impl<S: State> TransitionSystem for LiberalSystem<'_, S> {
    type C = Config<S>;

    fn initial_config(&self) -> Config<S> {
        Config::initial(self.machine, self.graph)
    }

    fn successors(&self, c: &Config<S>) -> Vec<Config<S>> {
        let mut out = SuccBuf::new();
        self.successors_into(c, &mut out);
        out.into_vec()
    }

    fn successors_into(&self, c: &Config<S>, out: &mut SuccBuf<Config<S>>) {
        let n = self.graph.node_count();
        // Precompute each node's stepped state once; a simultaneous step of
        // set S applies exactly these (all against the same pre-step view).
        let stepped: Vec<S> = self
            .graph
            .nodes()
            .map(|v| c.stepped_state(self.machine, self.graph, v))
            .collect();
        let moving: Vec<usize> = (0..n).filter(|&v| stepped[v] != *c.state(v)).collect();
        // Selections that differ only on silent nodes yield the same config,
        // so it suffices to enumerate subsets of the moving nodes. Distinct
        // masks yield distinct configurations, so no dedup is needed.
        for mask in 1usize..(1 << moving.len()) {
            let mut states = c.states().to_vec();
            for (i, &v) in moving.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    states[v] = stepped[v].clone();
                }
            }
            out.push(Config::from_states(states));
        }
    }

    fn is_accepting(&self, c: &Config<S>) -> bool {
        c.is_accepting(self.machine)
    }

    fn is_rejecting(&self, c: &Config<S>) -> bool {
        c.is_rejecting(self.machine)
    }
}

/// Whether a decider should explore the orbit quotient of the
/// configuration space under the communication graph's automorphism group
/// (see [`decide_symmetric`](crate::decide_symmetric) and the
/// `wam-core::symmetry` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Symmetry {
    /// Reduce when the structural automorphism group is non-trivial and was
    /// enumerated completely within [`ExploreOptions::symmetry_cap`];
    /// otherwise explore the full space. The right default: reduction is
    /// sound whenever it applies, and `Auto` never pays canonicalisation
    /// overhead on rigid graphs.
    #[default]
    Auto,
    /// Always canonicalise, even under a trivial group (useful for testing
    /// the quotient machinery itself; a trivial group makes it a no-op
    /// semantically but still exercises the wrapper).
    On,
    /// Never reduce: explore the full configuration space.
    Off,
}

/// Tuning knobs for [`Exploration::explore_with`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`ExploreOptions::default`] / [`ExploreOptions::with_limit`] and refine
/// through the builder methods ([`threads`](ExploreOptions::threads),
/// [`limit`](ExploreOptions::limit), …), so future backend knobs (counter
/// bounds, spill budgets) can be added without breaking downstream code.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Worker threads for frontier-parallel BFS. `0` uses the rayon
    /// default (the machine's available parallelism, or the
    /// `RAYON_NUM_THREADS` environment variable); `1` forces the
    /// sequential path.
    pub threads: usize,
    /// Minimum frontier width before a BFS level is processed in
    /// parallel; narrower levels take the sequential path, so small
    /// explorations never pay thread overhead.
    pub frontier_threshold: usize,
    /// Maximum number of reachable configurations before
    /// [`ExploreError::TooLarge`]. Under symmetry reduction this bounds the
    /// number of *orbit representatives*, which is what is interned.
    pub limit: usize,
    /// Orbit-quotient reduction policy. [`Exploration`] itself never
    /// canonicalises — the option is consumed by
    /// [`decide_symmetric`](crate::decide_symmetric) (and through it by
    /// [`decide_pseudo_stochastic`]), which wraps the system in a
    /// [`QuotientSystem`](crate::QuotientSystem) before exploring.
    pub symmetry: Symmetry,
    /// Cap on the order of the enumerated automorphism group; larger groups
    /// fall back to no reduction (see
    /// [`wam_graph::automorphism_group`](wam_graph::automorphism_group)).
    pub symmetry_cap: usize,
    /// How the successor CSR is stored: plain `u32` rows, the delta/varint
    /// compact encoding, or (the default) plain until the edge count
    /// clears a threshold. Setting a [`memory_budget`](Self::memory_budget)
    /// implies the compact encoding.
    pub edge_encoding: EdgeEncoding,
    /// Approximate byte budget for in-memory successor storage. When set,
    /// edges are varint-encoded and flushed segment-by-segment to a temp
    /// file once the resident encoding exceeds the budget; fixpoints then
    /// stream the file instead of building an in-memory reverse CSR. This
    /// turns [`ExploreError::TooLarge`]-scale edge sets into "slower"
    /// rather than "refused" — configurations themselves stay in memory
    /// (BFS dedup needs them), so [`ExploreOptions::limit`] still bounds
    /// the configuration count.
    pub memory_budget: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            threads: 0,
            frontier_threshold: 128,
            limit: 1_000_000,
            symmetry: Symmetry::default(),
            symmetry_cap: wam_graph::DEFAULT_GROUP_CAP,
            edge_encoding: EdgeEncoding::default(),
            memory_budget: None,
        }
    }
}

impl ExploreOptions {
    /// Default options with the given configuration-count limit.
    pub fn with_limit(limit: usize) -> Self {
        ExploreOptions {
            limit,
            ..ExploreOptions::default()
        }
    }

    /// Sets the worker thread count (`0` = rayon default, `1` = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the minimum frontier width for parallel BFS levels.
    pub fn frontier_threshold(mut self, frontier_threshold: usize) -> Self {
        self.frontier_threshold = frontier_threshold;
        self
    }

    /// Sets the configuration-count limit.
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Sets the orbit-quotient reduction policy.
    pub fn symmetry(mut self, symmetry: Symmetry) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Sets the cap on the enumerated automorphism group order.
    pub fn symmetry_cap(mut self, symmetry_cap: usize) -> Self {
        self.symmetry_cap = symmetry_cap;
        self
    }

    /// Sets the successor-CSR encoding policy.
    pub fn edge_encoding(mut self, edge_encoding: EdgeEncoding) -> Self {
        self.edge_encoding = edge_encoding;
        self
    }

    /// Sets the in-memory byte budget for successor storage (enables the
    /// out-of-core spill path).
    pub fn memory_budget(mut self, memory_budget: usize) -> Self {
        self.memory_budget = Some(memory_budget);
        self
    }
}

/// Width and edge count of one completed BFS level — recorded during
/// exploration, consumed by the parallel work-gate (each level's decision
/// uses the *previous* level's observed out-degree) and surfaced through
/// [`Exploration::level_stats`] for benchmarking and gate tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStat {
    /// Number of frontier configurations expanded on this level.
    pub width: usize,
    /// Number of (deduplicated) successor edges the level emitted.
    pub edges: u64,
}

/// Whether a BFS level should take the parallel path: the frontier must be
/// at least `frontier_threshold` wide **and** its estimated work — width ×
/// the *previous level's* average out-degree (+1 for the row itself) —
/// must clear `WORK_FACTOR ×` the threshold, so low-branching systems with
/// wide-but-cheap levels stay on the sequential path.
///
/// The previous level's degree is the right estimator: an earlier version
/// divided the cumulative edge count by the cumulative row count, so many
/// cheap early levels masked a branchy late level and mis-gated it onto
/// the sequential path (see `work_gate_uses_previous_level_degree`).
pub(crate) fn parallel_level_gate(
    threads: usize,
    width: usize,
    prev_width: usize,
    prev_edges: u64,
    frontier_threshold: usize,
) -> bool {
    const WORK_FACTOR: usize = 8;
    if threads <= 1 || width < frontier_threshold.max(2) {
        return false;
    }
    let avg_out = 1 + (prev_edges / prev_width.max(1) as u64) as usize;
    width.saturating_mul(avg_out) >= WORK_FACTOR * frontier_threshold
}

/// The explored configuration graph of a [`TransitionSystem`]: every
/// configuration reachable from the initial one (hash-consed to dense
/// `u32` ids), the non-silent step relation behind a CSR-row API (plain,
/// compact or spilled — see [`EdgeEncoding`]), acceptance flags as
/// bitsets, and `Pre*` machinery over a cached reverse CSR (or streaming
/// forward passes when the edges live on disk).
#[derive(Debug)]
pub struct Exploration<C> {
    interner: Interner<C>,
    /// Successor rows of every configuration, sorted and deduplicated.
    edges: EdgeStore,
    accepting: BitSet,
    rejecting: BitSet,
    /// Reverse CSR (predecessors), built on first `Pre*` query and shared
    /// by every subsequent one. Never built for spilled edge stores.
    rev: OnceLock<(Vec<u32>, Vec<u32>)>,
    /// The resolved worker-thread count the exploration ran with; fixpoint
    /// queries reuse it to decide their own parallel gates.
    threads: usize,
    /// The exploration's frontier threshold, reused as the minimum
    /// frontier width for parallel fixpoint rounds.
    fixpoint_threshold: usize,
    /// Per-level width/edge statistics, in BFS order.
    levels: Vec<LevelStat>,
}

/// Per-worker output of one parallel BFS level: the per-frontier-row
/// successor counts plus the flat `(hash, configuration)` buffer the
/// sharded merge consumes.
type LevelPart<C> = (Vec<u32>, Vec<(u64, C)>);

/// A `&mut [u32]` shared across scatter workers that write **disjoint**
/// slots (the parallel reverse-transpose hands each (chunk, target) pair
/// its own cursor range, so no two workers ever touch the same index).
struct SharedSliceU32 {
    ptr: *mut u32,
    len: usize,
}

// SAFETY: all concurrent access goes through `write` on disjoint indices.
unsafe impl Sync for SharedSliceU32 {}

impl SharedSliceU32 {
    fn new(slice: &mut [u32]) -> Self {
        SharedSliceU32 {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    ///
    /// Callers must guarantee no other worker writes index `idx`.
    #[inline]
    unsafe fn write(&self, idx: usize, value: u32) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = value };
    }
}

/// Generates and hashes the successors of `frontier`, chunked across up to
/// `threads` workers (one contiguous chunk per worker, flat buffers, no
/// per-row allocation). Part order is frontier order, so concatenating the
/// parts reproduces the sequential generation order exactly.
fn generate_parts<C, T>(system: &T, frontier: &[C], threads: usize) -> Vec<LevelPart<C>>
where
    C: Clone + Eq + Hash + fmt::Debug + Send + Sync,
    T: TransitionSystem<C = C> + Sync,
{
    let n = frontier.len();
    let nchunks = threads.min(n).max(1);
    let chunk = n.div_ceil(nchunks);
    (0..nchunks)
        .into_par_iter()
        .map(|k| {
            let begin = (k * chunk).min(n);
            let end = (begin + chunk).min(n);
            let mut lens: Vec<u32> = Vec::with_capacity(end - begin);
            let mut flat: Vec<(u64, C)> = Vec::new();
            // One successor buffer per worker, reused across the chunk's
            // rows — generation itself allocates nothing per configuration
            // for systems with a native `successors_into`.
            let mut buf: SuccBuf<C> = SuccBuf::new();
            for c in &frontier[begin..end] {
                buf.clear();
                system.successors_into(c, &mut buf);
                lens.push(buf.len() as u32);
                flat.extend(buf.drain().map(|s| (crate::intern::fx_hash(&s), s)));
            }
            (lens, flat)
        })
        .collect()
}

impl<C: Clone + Eq + Hash + fmt::Debug + Send + Sync> Exploration<C> {
    /// Explores `system` from its initial configuration.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `limit` configurations are
    /// reachable.
    pub fn explore<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        limit: usize,
    ) -> Result<Self, ExploreError> {
        Self::explore_with(
            system,
            system.initial_config(),
            ExploreOptions::with_limit(limit),
        )
    }

    /// Explores `system` from an arbitrary starting configuration.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `limit` configurations are
    /// reachable.
    pub fn explore_from<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        start: C,
        limit: usize,
    ) -> Result<Self, ExploreError> {
        Self::explore_with(system, start, ExploreOptions::with_limit(limit))
    }

    /// Explores `system` from `start` under explicit [`ExploreOptions`].
    ///
    /// The result — ids, edges, flags, verdicts — is a pure function of
    /// the transition system and `start`: it does not depend on `threads`
    /// or `frontier_threshold`, which only steer how the work is executed.
    ///
    /// # Errors
    ///
    /// [`ExploreError::TooLarge`] if more than `options.limit`
    /// configurations are reachable.
    pub fn explore_with<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        start: C,
        options: ExploreOptions,
    ) -> Result<Self, ExploreError> {
        match options.threads {
            1 => Self::explore_impl(system, start, options, 1),
            // The rayon default needs no dedicated pool: asking for the
            // global thread count up front avoids paying pool construction
            // on explorations whose levels never clear the parallel gate
            // (the "flood cycle" regression: thread-pool setup cost on a
            // 92-configuration space).
            0 => {
                let threads = rayon::current_num_threads();
                Self::explore_impl(system, start, options, threads)
            }
            t => {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .expect("thread pool");
                let threads = pool.current_num_threads();
                pool.install(|| Self::explore_impl(system, start, options, threads))
            }
        }
    }

    fn explore_impl<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        start: C,
        options: ExploreOptions,
        threads: usize,
    ) -> Result<Self, ExploreError> {
        let spill_err = |e: std::io::Error| ExploreError::Spill {
            message: e.to_string(),
        };
        let mut interner = Interner::new();
        let (start_id, _) = interner.intern(start);
        debug_assert_eq!(start_id, 0);
        let mut builder = EdgeBuilder::new(options.edge_encoding, options.memory_budget);
        let mut acc_flags: Vec<bool> = Vec::new();
        let mut rej_flags: Vec<bool> = Vec::new();
        let mut levels: Vec<LevelStat> = Vec::new();
        let mut lo = 0usize;
        let mut depth = 0usize;
        let mut row_scratch: Vec<u32> = Vec::new();
        let mut succ_scratch: SuccBuf<C> = SuccBuf::new();
        while lo < interner.len() {
            let hi = interner.len();
            let width = hi - lo;
            let (prev_width, prev_edges) = levels
                .last()
                .map_or((0, 0), |l: &LevelStat| (l.width, l.edges));
            let parallel = parallel_level_gate(
                threads,
                width,
                prev_width,
                prev_edges,
                options.frontier_threshold,
            );
            let edges_before = builder.edge_count();

            if parallel {
                Self::parallel_level(
                    system,
                    &mut interner,
                    &mut builder,
                    lo,
                    hi,
                    threads,
                    &mut row_scratch,
                )
                .map_err(spill_err)?;
            } else {
                // Sequential: generate into the reusable buffer (the borrow
                // of the interner ends with the `successors_into` call),
                // then intern each successor — no level materialisation, no
                // bucketing, one scratch row, one successor buffer.
                for i in lo..hi {
                    succ_scratch.clear();
                    system.successors_into(interner.get(i), &mut succ_scratch);
                    row_scratch.clear();
                    for s in succ_scratch.drain() {
                        row_scratch.push(interner.intern(s).0);
                    }
                    row_scratch.sort_unstable();
                    row_scratch.dedup();
                    builder.push_row(&row_scratch).map_err(spill_err)?;
                }
            }
            levels.push(LevelStat {
                width,
                edges: builder.edge_count() - edges_before,
            });
            depth += 1;
            if interner.len() > options.limit {
                return Err(ExploreError::TooLarge {
                    limit: options.limit,
                    interned: interner.len(),
                    depth,
                });
            }

            // Acceptance flags for the configurations discovered this level
            // (and, on the first level, the start configuration).
            let fresh = &interner.configs()[acc_flags.len()..];
            if parallel {
                let flags: Vec<(bool, bool)> = fresh
                    .par_iter()
                    .map(|c| (system.is_accepting(c), system.is_rejecting(c)))
                    .collect();
                for (a, r) in flags {
                    acc_flags.push(a);
                    rej_flags.push(r);
                }
            } else {
                for c in fresh {
                    acc_flags.push(system.is_accepting(c));
                    rej_flags.push(system.is_rejecting(c));
                }
            }
            lo = hi;
        }
        Ok(Exploration {
            interner,
            edges: builder.finish(),
            accepting: BitSet::from_bools(&acc_flags),
            rejecting: BitSet::from_bools(&rej_flags),
            rev: OnceLock::new(),
            threads,
            fixpoint_threshold: options.frontier_threshold,
            levels,
        })
    }

    /// Expands one BFS level in parallel, **pipelined**: the frontier is
    /// cut into batches; a generator thread produces each batch's hashed
    /// successors (itself chunk-parallel across the workers) while the
    /// main thread routes and deduplicates the previous batch through the
    /// interner's incremental [`LevelSession`](crate::intern) — so shard
    /// dedup overlaps successor generation instead of serialising after
    /// it. Dense ids are assigned once per level, in first-occurrence
    /// order across all batches: exactly the ids the sequential path (or
    /// an unpipelined merge) would produce.
    #[allow(clippy::too_many_arguments)]
    fn parallel_level<T: TransitionSystem<C = C> + Sync>(
        system: &T,
        interner: &mut Interner<C>,
        builder: &mut EdgeBuilder,
        lo: usize,
        hi: usize,
        threads: usize,
        row_scratch: &mut Vec<u32>,
    ) -> std::io::Result<()> {
        /// Target number of pipeline batches per level; a level narrower
        /// than `threads × PIPELINE_MIN_ROWS` runs as a single batch (the
        /// overlap would be all overhead).
        const PIPELINE_BATCHES: usize = 4;
        const PIPELINE_MIN_ROWS: usize = 64;

        let width = hi - lo;
        let mut lens: Vec<u32> = Vec::with_capacity(width);
        let (flat_ids, fresh) = {
            let (mut session, configs) = interner.level_session();
            let frontier = &configs[lo..hi];
            let batch = width
                .div_ceil(PIPELINE_BATCHES)
                .max(threads * PIPELINE_MIN_ROWS)
                .min(width);
            let nbatches = width.div_ceil(batch);
            if nbatches <= 1 {
                let parts = generate_parts(system, frontier, threads);
                let mut flats: Vec<Vec<(u64, C)>> = Vec::with_capacity(parts.len());
                for (l, f) in parts {
                    lens.extend_from_slice(&l);
                    flats.push(f);
                }
                session.push_parts(flats, true);
            } else {
                std::thread::scope(|scope| {
                    let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<LevelPart<C>>>(1);
                    scope.spawn(move || {
                        // The thread-count override is thread-local, so
                        // re-install the exploration's bound on the
                        // generator thread.
                        let pool = rayon::ThreadPoolBuilder::new()
                            .num_threads(threads)
                            .build()
                            .expect("thread pool");
                        pool.install(|| {
                            for b in 0..nbatches {
                                let begin = b * batch;
                                let end = ((b + 1) * batch).min(width);
                                let parts = generate_parts(system, &frontier[begin..end], threads);
                                if tx.send(parts).is_err() {
                                    return; // merge side abandoned the level
                                }
                            }
                        });
                    });
                    for parts in rx {
                        let mut flats: Vec<Vec<(u64, C)>> = Vec::with_capacity(parts.len());
                        for (l, f) in parts {
                            lens.extend_from_slice(&l);
                            flats.push(f);
                        }
                        session.push_parts(flats, true);
                    }
                });
            }
            session.finish()
        };
        interner.append_fresh(fresh);
        let mut cursor = 0usize;
        for &len in &lens {
            row_scratch.clear();
            row_scratch.extend_from_slice(&flat_ids[cursor..cursor + len as usize]);
            cursor += len as usize;
            row_scratch.sort_unstable();
            row_scratch.dedup();
            builder.push_row(row_scratch)?;
        }
        Ok(())
    }
}

impl<C: Clone + Eq + Hash + fmt::Debug> Exploration<C> {
    /// All reachable configurations (index 0 is the start).
    pub fn configs(&self) -> &[C] {
        self.interner.configs()
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the exploration is empty (never: the start is always present).
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// The dense id of configuration `c`, if it is reachable.
    pub fn index_of(&self, c: &C) -> Option<usize> {
        self.interner.index_of(c)
    }

    /// Successor ids of configuration `i` (non-silent steps only), sorted
    /// ascending and duplicate-free. Dereferences to `&[u32]`; compact and
    /// spilled edge stores decode the row on the fly.
    pub fn successors(&self, i: usize) -> SuccRow<'_> {
        self.edges.row(i)
    }

    /// Whether configuration `i` is accepting.
    pub fn is_accepting(&self, i: usize) -> bool {
        self.accepting.contains(i)
    }

    /// Whether configuration `i` is rejecting.
    pub fn is_rejecting(&self, i: usize) -> bool {
        self.rejecting.contains(i)
    }

    /// Total number of successor edges.
    pub fn edge_count(&self) -> u64 {
        self.edges.edge_count()
    }

    /// Whether any successor data was spilled to disk (see
    /// [`ExploreOptions::memory_budget`]).
    pub fn was_spilled(&self) -> bool {
        self.edges.is_spilled()
    }

    /// Bytes of successor data resident on disk (0 unless spilled).
    pub fn spilled_bytes(&self) -> u64 {
        self.edges.spilled_bytes()
    }

    /// Width and edge count of every completed BFS level, in order.
    pub fn level_stats(&self) -> &[LevelStat] {
        &self.levels
    }

    /// Forces construction of the cached reverse CSR now (a no-op for
    /// spilled edge stores, whose fixpoints stream the forward relation
    /// instead). Lets benchmarks time the transpose separately from the
    /// fixpoints that would otherwise trigger it lazily.
    pub fn build_reverse(&self) {
        if !self.edges.is_spilled() {
            let _ = self.reverse_csr();
        }
    }

    /// The reverse step relation in CSR form, built once and cached — in
    /// parallel (chunked counting sort over per-worker histogram partials)
    /// when the exploration ran multi-threaded and the edge set is big
    /// enough to amortise the histograms.
    fn reverse_csr(&self) -> &(Vec<u32>, Vec<u32>) {
        /// Work multiplier over the fixpoint threshold below which the
        /// transpose stays sequential.
        const PAR_REVERSE_FACTOR: u64 = 16;
        self.rev.get_or_init(|| {
            let n = self.len();
            let nedges = self.edges.edge_count() as usize;
            let parallel = self.threads > 1
                && !self.edges.is_spilled()
                && nedges as u64 >= PAR_REVERSE_FACTOR * self.fixpoint_threshold.max(1) as u64;
            if !parallel {
                let mut off = vec![0u32; n + 1];
                self.edges.for_each_row(|_, row| {
                    for &t in row {
                        off[t as usize + 1] += 1;
                    }
                });
                for i in 0..n {
                    off[i + 1] += off[i];
                }
                let mut cursor: Vec<u32> = off[..n].to_vec();
                let mut tgt = vec![0u32; nedges];
                self.edges.for_each_row(|i, row| {
                    for &t in row {
                        let c = &mut cursor[t as usize];
                        tgt[*c as usize] = i;
                        *c += 1;
                    }
                });
                return (off, tgt);
            }

            // Parallel counting sort. Chunks are contiguous ascending row
            // ranges and each target's slots are handed out in chunk order,
            // so the output is bit-identical to the sequential transpose.
            // Worker closures borrow the edge store alone, not `self`, so
            // `C` needs no `Sync` bound.
            let edges = &self.edges;
            let nchunks = self.threads.min(n).max(1);
            let chunk = n.div_ceil(nchunks);
            let bounds = |k: usize| {
                let begin = (k * chunk).min(n);
                (begin, (begin + chunk).min(n))
            };
            // 1. Per-chunk target histograms (entry `n` stashes the chunk
            // index, which `par_iter_mut` in step 3 cannot otherwise see).
            let mut hists: Vec<Vec<u32>> = (0..nchunks)
                .into_par_iter()
                .map(|k| {
                    let (begin, end) = bounds(k);
                    let mut h = vec![0u32; n + 1];
                    h[n] = k as u32;
                    let mut scratch = Vec::new();
                    edges.for_each_row_in(begin..end, &mut scratch, |_, row| {
                        for &t in row {
                            h[t as usize] += 1;
                        }
                    });
                    h
                })
                .collect();
            // 2. Global offsets, then per-(chunk, target) start cursors.
            let mut off = vec![0u32; n + 1];
            for h in &hists {
                for t in 0..n {
                    off[t + 1] += h[t];
                }
            }
            for i in 0..n {
                off[i + 1] += off[i];
            }
            let mut cursor: Vec<u32> = off[..n].to_vec();
            for h in &mut hists {
                for (slot, cur) in h[..n].iter_mut().zip(cursor.iter_mut()) {
                    let count = *slot;
                    *slot = *cur;
                    *cur += count;
                }
            }
            // 3. Parallel scatter into disjoint slots.
            let mut tgt = vec![0u32; nedges];
            {
                let shared = SharedSliceU32::new(&mut tgt);
                hists.par_iter_mut().for_each(|h| {
                    let k = h[n] as usize;
                    let (begin, end) = bounds(k);
                    let mut scratch = Vec::new();
                    edges.for_each_row_in(begin..end, &mut scratch, |i, row| {
                        for &t in row {
                            let slot = &mut h[t as usize];
                            // SAFETY: per-(chunk, target) slot ranges are
                            // disjoint by construction of the cursors.
                            unsafe { shared.write(*slot as usize, i) };
                            *slot += 1;
                        }
                    });
                });
            }
            (off, tgt)
        })
    }

    /// `Pre*` as a bitset fixpoint: a level-synchronous backward BFS over
    /// the cached reverse CSR, with wide frontiers expanded in parallel
    /// (per-worker discovery bitsets merged by word-wide ORs — the least
    /// fixpoint is independent of expansion order, and the bitset output
    /// makes parallel and sequential rounds bit-identical). Spilled edge
    /// stores take [`Self::pre_star_streaming`] instead.
    fn pre_star_bits(&self, targets: &BitSet) -> BitSet {
        if self.edges.is_spilled() {
            return self.pre_star_streaming(targets);
        }
        let n = self.len();
        let (off, tgt) = self.reverse_csr();
        let preds = |j: u32| &tgt[off[j as usize] as usize..off[j as usize + 1] as usize];
        let mut in_set = targets.clone();
        let mut frontier: Vec<u32> = targets.iter_ones().map(|i| i as u32).collect();
        let par_min = self.fixpoint_threshold.max(2);
        while !frontier.is_empty() {
            if self.threads > 1 && frontier.len() >= par_min {
                let nchunks = self.threads.min(frontier.len());
                let chunk = frontier.len().div_ceil(nchunks);
                let in_ref = &in_set;
                let frontier_ref = &frontier;
                let locals: Vec<BitSet> = (0..nchunks)
                    .into_par_iter()
                    .map(|k| {
                        let begin = (k * chunk).min(frontier_ref.len());
                        let end = (begin + chunk).min(frontier_ref.len());
                        let mut local = BitSet::new(n);
                        for &j in &frontier_ref[begin..end] {
                            for &i in preds(j) {
                                if !in_ref.contains(i as usize) {
                                    local.insert(i as usize);
                                }
                            }
                        }
                        local
                    })
                    .collect();
                let mut discovered = BitSet::new(n);
                for local in &locals {
                    discovered.union_with(local);
                }
                // Workers race only against the frozen `in_set`, so two
                // chunks can discover the same configuration; the subtract
                // keeps already-settled bits out of the next frontier.
                discovered.subtract(&in_set);
                in_set.union_with(&discovered);
                frontier = discovered.iter_ones().map(|i| i as u32).collect();
            } else {
                let mut next: Vec<u32> = Vec::new();
                for &j in &frontier {
                    for &i in preds(j) {
                        if in_set.insert(i as usize) {
                            next.push(i);
                        }
                    }
                }
                frontier = next;
            }
        }
        in_set
    }

    /// `Pre*` for spilled edge stores: repeated **descending-order
    /// streaming passes** over the forward relation (`i` joins the set
    /// when some successor is in it), chunk by chunk from the last row
    /// backwards, until a full pass changes nothing. BFS ids mostly point
    /// forward (level order), so a descending sweep collapses whole
    /// chains per pass and the pass count stays small; each pass re-reads
    /// the spill file sequentially — no reverse CSR is ever materialised,
    /// keeping the memory budget honest.
    fn pre_star_streaming(&self, targets: &BitSet) -> BitSet {
        let mut in_set = targets.clone();
        let chunks = self.edges.chunks();
        loop {
            let mut changed = false;
            for chunk in chunks.iter().rev() {
                self.edges.for_rows_desc(chunk, |i, row| {
                    if !in_set.contains(i) && row.iter().any(|&j| in_set.contains(j as usize)) {
                        in_set.insert(i);
                        changed = true;
                    }
                });
            }
            if !changed {
                return in_set;
            }
        }
    }

    /// Configurations from which only `good`-flagged configurations are
    /// reachable: the complement of `Pre*(¬good)`.
    fn stably_bits(&self, good: &BitSet) -> BitSet {
        let mut bad = good.clone();
        bad.negate();
        let mut out = self.pre_star_bits(&bad);
        out.negate();
        out
    }

    /// Membership flags of `Pre*(targets)`: configurations that can reach a
    /// configuration flagged in `targets` (targets included).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of configurations.
    pub fn pre_star(&self, targets: &[bool]) -> Vec<bool> {
        assert_eq!(targets.len(), self.len());
        self.pre_star_bits(&BitSet::from_bools(targets)).to_bools()
    }

    /// Configurations that are *stably accepting*: every configuration
    /// reachable from them (themselves included) is accepting.
    pub fn stably_accepting(&self) -> Vec<bool> {
        self.stably_bits(&self.accepting).to_bools()
    }

    /// Configurations that are *stably rejecting*.
    pub fn stably_rejecting(&self) -> Vec<bool> {
        self.stably_bits(&self.rejecting).to_bools()
    }

    /// The verdict under pseudo-stochastic fairness.
    pub fn verdict(&self) -> Verdict {
        let acc = self.stably_bits(&self.accepting).any();
        let rej = self.stably_bits(&self.rejecting).any();
        match (acc, rej) {
            (true, true) => Verdict::Inconsistent,
            (true, false) => Verdict::Accepts,
            (false, true) => Verdict::Rejects,
            (false, false) => Verdict::NoConsensus,
        }
    }
}

/// Decides any [`TransitionSystem`] under pseudo-stochastic fairness by
/// exhaustive exploration of the **full** configuration space — this entry
/// point has no graph to take automorphisms of. Systems that expose their
/// graph (every model family in the workspace, via
/// [`NodeSymmetric`](crate::NodeSymmetric)) should prefer
/// [`decide_symmetric`](crate::decide_symmetric), which explores the orbit
/// quotient under `Aut(G)` when profitable.
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if more than `limit` configurations are
/// reachable.
#[deprecated(
    since = "0.2.0",
    note = "use `Exploration::explore(system, limit)?.verdict()` directly, \
            or `wam_certify::Decider` for machine-on-graph decisions"
)]
pub fn decide_system<T: TransitionSystem + Sync>(
    system: &T,
    limit: usize,
) -> Result<Verdict, ExploreError>
where
    T::C: Send + Sync,
{
    Ok(Exploration::explore(system, limit)?.verdict())
}

/// Decides `machine` on `graph` under pseudo-stochastic fairness and
/// exclusive selection, exactly, by exploring the configuration space —
/// reduced to its orbit quotient under `Aut(graph)` when the group is
/// non-trivial (the [`Symmetry::Auto`] policy; use
/// [`decide_symmetric`](crate::decide_symmetric) with explicit
/// [`ExploreOptions`] to control this).
///
/// # Errors
///
/// [`ExploreError::TooLarge`] if the explored space (orbit representatives
/// under reduction) exceeds `limit` configurations.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` or `wam_certify::Decider`"
)]
pub fn decide_pseudo_stochastic<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    crate::decide(
        machine,
        graph,
        crate::Schedule::PseudoStochastic,
        crate::Backend::Auto,
        ExploreOptions::with_limit(limit),
    )
    .map(|(verdict, _)| verdict)
}

pub(crate) fn lasso_verdict<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    selection_at: impl Fn(usize) -> Selection,
    period: usize,
    limit: usize,
) -> Result<(Verdict, usize), ExploreError> {
    // The run is deterministic; its state is (configuration, step mod
    // period). Configurations are interned, so the walk stores and hashes
    // dense ids instead of cloning the configuration at every step.
    let mut interner: Interner<Config<S>> = Interner::new();
    let mut seen: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let mut trace: Vec<u32> = Vec::new();
    let mut c = Config::initial(machine, graph);
    for t in 0..limit {
        let (id, _) = interner.intern(c);
        let key = (id, (t % period) as u32);
        if let Some(&start) = seen.get(&key) {
            // Lasso closed: the loop is trace[start..t].
            let loop_ids = &trace[start..];
            let all_acc = loop_ids
                .iter()
                .all(|&i| interner.get(i as usize).is_accepting(machine));
            let all_rej = loop_ids
                .iter()
                .all(|&i| interner.get(i as usize).is_rejecting(machine));
            let verdict = if all_acc {
                Verdict::Accepts
            } else if all_rej {
                Verdict::Rejects
            } else {
                Verdict::NoConsensus
            };
            return Ok((verdict, t));
        }
        seen.insert(key, t);
        trace.push(id);
        c = interner
            .get(id as usize)
            .successor(machine, graph, &selection_at(t));
    }
    Err(ExploreError::NoLasso { limit })
}

/// Decides `machine` on `graph` along the round-robin exclusive run — a fair
/// adversarial schedule. For a consistent automaton of an adversarial class
/// this is the class verdict; `NoConsensus` witnesses failure to decide.
///
/// # Errors
///
/// [`ExploreError::NoLasso`] if the deterministic run does not become
/// periodic within `limit` steps.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` or `wam_certify::Decider`"
)]
pub fn decide_adversarial_round_robin<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    crate::decide(
        machine,
        graph,
        crate::Schedule::RoundRobin,
        crate::Backend::Auto,
        ExploreOptions::with_limit(limit),
    )
    .map(|(verdict, _)| verdict)
}

/// Decides `machine` on `graph` along the synchronous run (the unique fair
/// schedule of synchronous selection; also a fair adversarial schedule of the
/// liberal regime).
///
/// # Errors
///
/// [`ExploreError::NoLasso`] if the run does not become periodic within
/// `limit` steps.
#[deprecated(
    since = "0.2.0",
    note = "use `wam_core::decide` or `wam_certify::Decider`"
)]
pub fn decide_synchronous<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    limit: usize,
) -> Result<Verdict, ExploreError> {
    crate::decide(
        machine,
        graph,
        crate::Schedule::Synchronous,
        crate::Backend::Auto,
        ExploreOptions::with_limit(limit),
    )
    .map(|(verdict, _)| verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output};
    use wam_graph::{generators, LabelCount};

    /// "Some node carries label x1", by flag flooding (a dAf machine).
    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    // Schedule-specific shorthands over the unified dispatch, mirroring
    // what the deprecated wrappers used to provide.
    fn ps<S: State>(m: &Machine<S>, g: &Graph, limit: usize) -> Result<Verdict, ExploreError> {
        crate::decide(
            m,
            g,
            crate::Schedule::PseudoStochastic,
            crate::Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .map(|(v, _)| v)
    }

    fn rr<S: State>(m: &Machine<S>, g: &Graph, limit: usize) -> Result<Verdict, ExploreError> {
        crate::decide(
            m,
            g,
            crate::Schedule::RoundRobin,
            crate::Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .map(|(v, _)| v)
    }

    fn sy<S: State>(m: &Machine<S>, g: &Graph, limit: usize) -> Result<Verdict, ExploreError> {
        crate::decide(
            m,
            g,
            crate::Schedule::Synchronous,
            crate::Backend::Auto,
            ExploreOptions::with_limit(limit),
        )
        .map(|(v, _)| v)
    }

    fn dsys<T: TransitionSystem + Sync>(system: &T, limit: usize) -> Result<Verdict, ExploreError>
    where
        T::C: Send + Sync,
    {
        Ok(Exploration::explore(system, limit)?.verdict())
    }

    #[test]
    fn flood_accepts_when_label_present() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        assert_eq!(ps(&flood(), &g, 10_000).unwrap(), Verdict::Accepts);
        assert_eq!(rr(&flood(), &g, 10_000).unwrap(), Verdict::Accepts);
        assert_eq!(sy(&flood(), &g, 10_000).unwrap(), Verdict::Accepts);
    }

    #[test]
    fn flood_rejects_when_label_absent() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 0]));
        assert_eq!(ps(&flood(), &g, 10_000).unwrap(), Verdict::Rejects);
        assert_eq!(rr(&flood(), &g, 10_000).unwrap(), Verdict::Rejects);
    }

    #[test]
    fn exploration_counts_configs() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 1000).unwrap();
        assert!(e.len() >= 3);
        assert_eq!(e.verdict(), Verdict::Accepts);
        assert!(e.stably_accepting().iter().any(|&b| b));
    }

    #[test]
    fn limit_is_respected() {
        let g = generators::labelled_line(&LabelCount::from_vec(vec![5, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let err = Exploration::explore(&sys, 2).unwrap_err();
        // The diagnostic fields surface in the Display rendering that
        // `decide_*` callers propagate.
        let msg = err.to_string();
        assert!(msg.contains("limit of 2"), "{msg}");
        assert!(msg.contains("interned"), "{msg}");
        assert!(msg.contains("depth"), "{msg}");
        match err {
            ExploreError::TooLarge {
                limit,
                interned,
                depth,
            } => {
                assert_eq!(limit, 2);
                assert!(interned > limit, "interned count must exceed the limit");
                assert!(depth >= 1, "at least one BFS level completed");
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn toggling_machine_has_no_consensus() {
        let m = Machine::new(
            1,
            |_| false,
            |&s, _| !s,
            |&s| if s { Output::Accept } else { Output::Reject },
        );
        let g = generators::cycle(3);
        assert_eq!(sy(&m, &g, 10_000).unwrap(), Verdict::NoConsensus);
        assert_eq!(ps(&m, &g, 10_000).unwrap(), Verdict::NoConsensus);
    }

    #[test]
    fn first_mover_locks_consensus() {
        // A node moving with all-undecided neighbours locks Accept, and the
        // lock floods: every fair run accepts.
        let m = Machine::new(
            1,
            |_| 0u8,
            |&s, _| if s == 0 { 1 } else { s },
            |&s| match s {
                1 => Output::Accept,
                _ => Output::Neutral,
            },
        );
        let g = generators::cycle(3);
        assert_eq!(ps(&m, &g, 10_000).unwrap(), Verdict::Accepts);
    }

    #[test]
    fn seeded_disagreement_never_reaches_consensus() {
        // Locked accept-seed and reject-seed coexist: no consensus possible.
        let m = Machine::new(
            1,
            |l| if l.0 == 0 { 1u8 } else { 2u8 },
            |&s, _| s,
            |&s| match s {
                1 => Output::Accept,
                _ => Output::Reject,
            },
        );
        let g = generators::labelled_line(&LabelCount::from_vec(vec![1, 2]));
        assert_eq!(ps(&m, &g, 10_000).unwrap(), Verdict::NoConsensus);
    }

    #[test]
    fn liberal_and_exclusive_verdicts_agree() {
        // The [16] selection collapse, checked exactly on small inputs.
        let m = flood();
        for counts in [vec![3u64, 1], vec![4, 0], vec![2, 2]] {
            let g = generators::labelled_cycle(&LabelCount::from_vec(counts.clone()));
            let excl = dsys(&ExclusiveSystem::new(&m, &g), 1_000_000).unwrap();
            let lib = dsys(&LiberalSystem::new(&m, &g), 1_000_000).unwrap();
            assert_eq!(excl, lib, "{counts:?}");
        }
    }

    #[test]
    fn liberal_successors_include_simultaneous_moves() {
        // On a t-f-f-t line, one liberal step can flood both inner nodes.
        let m = flood();
        let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 2]));
        let sys = LiberalSystem::new(&m, &g);
        // Initial: labels x0 x0 x1 x1 → false false true true.
        let c0 = sys.initial_config();
        let both = Config::from_states(vec![false, true, true, true]);
        let succ = sys.successors(&c0);
        assert!(succ.contains(&both), "{succ:?}");
    }

    #[test]
    fn lasso_limit_error() {
        let m = Machine::new(1, |_| 0u64, |&s, _| s + 1, |_| Output::Neutral);
        let g = generators::cycle(3);
        let err = sy(&m, &g, 50).unwrap_err();
        assert_eq!(err, ExploreError::NoLasso { limit: 50 });
    }

    #[test]
    fn inconsistent_machine_detected() {
        // First mover's identity decides the consensus: node ids are not
        // visible, but labels are; make label-0 nodes lock Accept and label-1
        // nodes lock Reject when moving first, with locks flooding.
        let m = Machine::new(
            1,
            |l| if l.0 == 0 { 10u8 } else { 20u8 },
            |&s, n| {
                if s >= 10 {
                    // undecided (10 = would lock accept, 20 = would lock reject)
                    if n.exists(|&t| t == 1) {
                        1
                    } else if n.exists(|&t| t == 2) {
                        2
                    } else if s == 10 {
                        1
                    } else {
                        2
                    }
                } else {
                    s
                }
            },
            |&s| match s {
                1 => Output::Accept,
                2 => Output::Reject,
                _ => Output::Neutral,
            },
        );
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
        assert_eq!(ps(&m, &g, 100_000).unwrap(), Verdict::Inconsistent);
    }

    #[test]
    fn index_of_finds_every_reachable_config() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 1]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 10_000).unwrap();
        for (i, c) in e.configs().iter().enumerate() {
            assert_eq!(e.index_of(c), Some(i));
        }
        let unreachable = Config::from_states(vec![true, false, true, false]);
        assert_eq!(e.index_of(&unreachable), None);
    }

    #[test]
    fn successor_ids_are_sorted_and_unique() {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 10_000).unwrap();
        for i in 0..e.len() {
            let row = e.successors(i);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i}: {row:?}");
            for &j in row.iter() {
                assert!((j as usize) < e.len());
            }
        }
    }

    #[test]
    fn parallel_options_give_identical_exploration() {
        // Same ids, edges, flags and verdict regardless of thread count or
        // frontier threshold — the engine is deterministic by construction.
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 2]));
        let m = flood();
        let sys = ExclusiveSystem::new(&m, &g);
        let seq = Exploration::explore_with(
            &sys,
            sys.initial_config(),
            ExploreOptions {
                threads: 1,
                ..ExploreOptions::with_limit(100_000)
            },
        )
        .unwrap();
        let par = Exploration::explore_with(
            &sys,
            sys.initial_config(),
            ExploreOptions {
                threads: 4,
                frontier_threshold: 1,
                ..ExploreOptions::with_limit(100_000)
            },
        )
        .unwrap();
        assert_eq!(seq.configs(), par.configs());
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            assert_eq!(seq.successors(i), par.successors(i));
            assert_eq!(seq.is_accepting(i), par.is_accepting(i));
            assert_eq!(seq.is_rejecting(i), par.is_rejecting(i));
        }
        assert_eq!(seq.verdict(), par.verdict());
    }

    #[test]
    fn work_gate_uses_previous_level_degree() {
        // Regression for the estimator bug: the gate once divided the
        // *cumulative* edge count by the cumulative row count, so a long
        // cheap prefix diluted the degree of a branchy level and mis-gated
        // it sequential. The gate must use the previous level alone.
        let ft = 16;
        // Hard prerequisites first: single-threaded or sub-threshold
        // frontiers never parallelise, whatever the degree says.
        assert!(!parallel_level_gate(1, 1_000_000, 1, 1_000_000, ft));
        assert!(!parallel_level_gate(8, ft - 1, 1, 1_000_000, ft));
        // A wide level after a branchy one clears the work bar…
        assert!(parallel_level_gate(2, 32, 1, 32, ft));
        // …and a wide-but-cheap level after a chain-like one does not.
        assert!(!parallel_level_gate(2, 32, 32, 32, ft));
        // The first level has no predecessor stats; avg_out degrades to 1
        // and only raw width can clear the bar.
        assert!(!parallel_level_gate(2, 8 * ft - 1, 0, 0, ft));
        assert!(parallel_level_gate(2, 8 * ft, 0, 0, ft));
    }

    /// A two-phase system: a 200-step chain (width 1, degree 1) that fans
    /// out into 32 terminal configurations at the end.
    struct TwoPhase;
    const CHAIN: u32 = 200;
    const FAN: u32 = 32;

    impl TransitionSystem for TwoPhase {
        type C = u32;
        fn initial_config(&self) -> u32 {
            0
        }
        fn successors(&self, &c: &u32) -> Vec<u32> {
            match c.cmp(&CHAIN) {
                std::cmp::Ordering::Less => vec![c + 1],
                std::cmp::Ordering::Equal => (CHAIN + 1..=CHAIN + FAN).collect(),
                std::cmp::Ordering::Greater => vec![],
            }
        }
        fn is_accepting(&self, &c: &u32) -> bool {
            c > CHAIN
        }
        fn is_rejecting(&self, _: &u32) -> bool {
            false
        }
    }

    #[test]
    fn two_phase_level_stats_expose_the_gate_fix() {
        let e = Exploration::explore_with(
            &TwoPhase,
            0,
            ExploreOptions {
                threads: 2,
                frontier_threshold: 16,
                ..ExploreOptions::with_limit(10_000)
            },
        )
        .unwrap();
        assert_eq!(e.len(), (CHAIN + FAN + 1) as usize);
        assert_eq!(e.verdict(), Verdict::Accepts);
        let stats = e.level_stats();
        // Chain levels: width 1, one edge each; the last chain level fans
        // out; the final level is terminal.
        assert_eq!(stats.len(), (CHAIN + 2) as usize);
        assert_eq!(stats[0], LevelStat { width: 1, edges: 1 });
        assert_eq!(
            stats[CHAIN as usize],
            LevelStat {
                width: 1,
                edges: FAN as u64
            }
        );
        assert_eq!(
            stats[(CHAIN + 1) as usize],
            LevelStat {
                width: FAN as usize,
                edges: 0
            }
        );
        // The fan level's gate decision under the fixed estimator (the
        // previous level's degree is FAN)…
        let prev = stats[CHAIN as usize];
        assert!(parallel_level_gate(
            2,
            FAN as usize,
            prev.width,
            prev.edges,
            16
        ));
        // …whereas the old cumulative estimator would have diluted that
        // degree across the 200-step chain and kept the level sequential.
        let cum_width: usize = stats[..=CHAIN as usize].iter().map(|l| l.width).sum();
        let cum_edges: u64 = stats[..=CHAIN as usize].iter().map(|l| l.edges).sum();
        let cum_avg = 1 + (cum_edges / cum_width.max(1) as u64) as usize;
        assert!(
            (FAN as usize) * cum_avg < 8 * 16,
            "cumulative estimate must fail the bar for this regression test \
             to be meaningful (got {cum_avg})"
        );
    }
}
