//! Successor-edge storage for [`Exploration`](crate::Exploration): a plain
//! CSR, a delta/varint-compacted CSR, and an out-of-core spill
//! representation, all behind one row-oriented API.
//!
//! The exploration engine appends one sorted, deduplicated successor row
//! per configuration, in id order. Three representations serve different
//! regimes:
//!
//! * **Plain** — `(offsets, ids)` as two flat `u32` vectors; zero decode
//!   cost, 4 bytes per edge. The default for everything small enough.
//! * **Compact** — rows are strictly ascending, so each row is stored as
//!   its first id followed by the gaps, LEB128-varint encoded. Successor
//!   ids of a BFS level cluster around the level's id range, so gaps are
//!   small and most edges take 1–2 bytes instead of 4. Selected
//!   automatically above [`COMPACT_EDGE_THRESHOLD`] edges (or on request).
//! * **Spilled** — the compact byte stream, flushed segment-by-segment to
//!   an anonymous temp file whenever the in-memory buffer exceeds half the
//!   caller's memory budget. Fixpoints re-read the stream sequentially in
//!   large chunks (no mmap); random row access does one positioned read.
//!
//! Row boundaries always coincide with segment boundaries, so every row is
//! one contiguous byte range of the global stream — either entirely in the
//! file or entirely in the in-memory tail.

use std::fs::File;
use std::io::Write;
use std::ops::{Deref, Range};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Edge count above which `Auto` switches the forward CSR to the compact
/// encoding (8 Mi edges ≈ 32 MiB plain).
pub(crate) const COMPACT_EDGE_THRESHOLD: usize = 8 << 20;

/// Chunk size for streaming re-reads of a spilled edge stream.
const STREAM_CHUNK_BYTES: usize = 4 << 20;

/// Which successor-row representation [`Exploration`](crate::Exploration)
/// uses (see [`ExploreOptions::edge_encoding`](crate::ExploreOptions)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeEncoding {
    /// Plain CSR below a threshold (8 Mi edges ≈ 32 MiB plain), compact
    /// above it. Setting a memory budget implies the compact encoding
    /// regardless.
    #[default]
    Auto,
    /// Always the plain `u32` CSR (fastest; 4 bytes per edge).
    Plain,
    /// Always the delta/varint encoding (typically 1–2 bytes per edge).
    Compact,
}

/// One successor row: borrowed straight out of a plain CSR, or decoded on
/// the fly from the compact / spilled representations. Dereferences to
/// `&[u32]`, so call sites treat it as a slice.
#[derive(Debug, Clone)]
pub enum SuccRow<'a> {
    /// A view into the plain CSR.
    Borrowed(&'a [u32]),
    /// A row decoded from the compact or spilled byte stream.
    Owned(Vec<u32>),
}

impl Deref for SuccRow<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            SuccRow::Borrowed(s) => s,
            SuccRow::Owned(v) => v,
        }
    }
}

impl PartialEq for SuccRow<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for SuccRow<'_> {}

impl PartialEq<[u32]> for SuccRow<'_> {
    fn eq(&self, other: &[u32]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u32>> for SuccRow<'_> {
    fn eq(&self, other: &Vec<u32>) -> bool {
        **self == **other
    }
}

impl<'a, 'b> IntoIterator for &'a SuccRow<'b> {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[inline]
fn write_varint(buf: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Encodes a strictly ascending row as first-id + gaps.
fn encode_row(buf: &mut Vec<u8>, row: &[u32]) {
    let mut prev = 0u32;
    for (k, &id) in row.iter().enumerate() {
        debug_assert!(k == 0 || id > prev, "rows must be strictly ascending");
        let delta = if k == 0 { id } else { id - prev };
        write_varint(buf, delta);
        prev = id;
    }
}

/// Decodes an encoded row (exactly `bytes` long) into `out`.
fn decode_row(bytes: &[u8], out: &mut Vec<u32>) {
    let mut pos = 0usize;
    let mut prev = 0u32;
    let mut first = true;
    while pos < bytes.len() {
        let delta = read_varint(bytes, &mut pos);
        prev = if first { delta } else { prev + delta };
        first = false;
        out.push(prev);
    }
}

/// Positioned read that leaves the file cursor state irrelevant.
#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], pos: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, pos)
}

#[cfg(windows)]
fn read_at(file: &File, mut buf: &mut [u8], mut pos: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_read(buf, pos)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf = &mut buf[n..];
        pos += n as u64;
    }
    Ok(())
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn create_spill_file() -> std::io::Result<(File, PathBuf)> {
    let path = std::env::temp_dir().join(format!(
        "wam-spill-{}-{}.csr",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)?;
    Ok((file, path))
}

enum Rep {
    Plain {
        off: Vec<u32>,
        ids: Vec<u32>,
    },
    Compact {
        boff: Vec<u64>,
        bytes: Vec<u8>,
    },
    Spilled {
        boff: Vec<u64>,
        file: File,
        path: PathBuf,
        /// Bytes written to the file; the global stream is the file
        /// followed by `tail`.
        file_len: u64,
        tail: Vec<u8>,
    },
}

impl std::fmt::Debug for Rep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rep::Plain { ids, .. } => write!(f, "Plain({} edges)", ids.len()),
            Rep::Compact { bytes, .. } => write!(f, "Compact({} bytes)", bytes.len()),
            Rep::Spilled { file_len, tail, .. } => {
                write!(
                    f,
                    "Spilled({file_len} bytes on disk, {} in tail)",
                    tail.len()
                )
            }
        }
    }
}

/// The finished successor storage of one exploration.
#[derive(Debug)]
pub(crate) struct EdgeStore {
    rep: Rep,
    edges: u64,
}

impl Drop for EdgeStore {
    fn drop(&mut self) {
        if let Rep::Spilled { path, .. } = &self.rep {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl EdgeStore {
    /// Number of rows (configurations).
    #[cfg(test)]
    fn rows(&self) -> usize {
        match &self.rep {
            Rep::Plain { off, .. } => off.len() - 1,
            Rep::Compact { boff, .. } | Rep::Spilled { boff, .. } => boff.len() - 1,
        }
    }

    /// Whether the representation is the uncompressed CSR.
    #[cfg(test)]
    fn is_plain(&self) -> bool {
        matches!(self.rep, Rep::Plain { .. })
    }

    /// Total number of edges.
    pub(crate) fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Bytes of edge data resident on disk (0 unless spilled).
    pub(crate) fn spilled_bytes(&self) -> u64 {
        match &self.rep {
            Rep::Spilled { file_len, .. } => *file_len,
            _ => 0,
        }
    }

    /// Whether any edge data lives on disk.
    pub(crate) fn is_spilled(&self) -> bool {
        matches!(self.rep, Rep::Spilled { .. })
    }

    /// The successor row of configuration `i`.
    pub(crate) fn row(&self, i: usize) -> SuccRow<'_> {
        match &self.rep {
            Rep::Plain { off, ids } => {
                SuccRow::Borrowed(&ids[off[i] as usize..off[i + 1] as usize])
            }
            Rep::Compact { boff, bytes } => {
                let mut out = Vec::new();
                decode_row(&bytes[boff[i] as usize..boff[i + 1] as usize], &mut out);
                SuccRow::Owned(out)
            }
            Rep::Spilled {
                boff,
                file,
                file_len,
                tail,
                ..
            } => {
                let (start, end) = (boff[i], boff[i + 1]);
                let mut out = Vec::new();
                if start >= *file_len {
                    // Rows never straddle the file/tail boundary (flushes
                    // happen between rows), so the whole row is in the tail.
                    let s = (start - file_len) as usize;
                    let e = (end - file_len) as usize;
                    decode_row(&tail[s..e], &mut out);
                } else {
                    let mut buf = vec![0u8; (end - start) as usize];
                    read_at(file, &mut buf, start).expect("spill file read");
                    decode_row(&buf, &mut out);
                }
                SuccRow::Owned(out)
            }
        }
    }

    /// Streams every row in ascending id order: `f(source, successor_ids)`.
    /// Spilled streams are read in [`STREAM_CHUNK_BYTES`] chunks; decode
    /// scratch is reused across rows.
    pub(crate) fn for_each_row(&self, mut f: impl FnMut(u32, &[u32])) {
        match &self.rep {
            Rep::Plain { off, ids } => {
                for i in 0..off.len() - 1 {
                    f(i as u32, &ids[off[i] as usize..off[i + 1] as usize]);
                }
            }
            Rep::Compact { boff, bytes } => {
                let mut scratch = Vec::new();
                for i in 0..boff.len() - 1 {
                    scratch.clear();
                    decode_row(&bytes[boff[i] as usize..boff[i + 1] as usize], &mut scratch);
                    f(i as u32, &scratch);
                }
            }
            Rep::Spilled { .. } => {
                let mut scratch = Vec::new();
                for chunk in self.chunks() {
                    self.with_chunk(&chunk, |first_row, boff, bytes| {
                        let base = boff[0];
                        for k in 0..boff.len() - 1 {
                            scratch.clear();
                            decode_row(
                                &bytes[(boff[k] - base) as usize..(boff[k + 1] - base) as usize],
                                &mut scratch,
                            );
                            f((first_row + k) as u32, &scratch);
                        }
                    });
                }
            }
        }
    }

    /// Streams the rows of `rows` in ascending order with a caller-provided
    /// decode scratch — the per-chunk worker of the parallel reverse
    /// transpose. Not available on spilled stores (those never build a
    /// reverse CSR; fixpoints stream forward passes instead).
    pub(crate) fn for_each_row_in(
        &self,
        rows: Range<usize>,
        scratch: &mut Vec<u32>,
        mut f: impl FnMut(u32, &[u32]),
    ) {
        match &self.rep {
            Rep::Plain { off, ids } => {
                for i in rows {
                    f(i as u32, &ids[off[i] as usize..off[i + 1] as usize]);
                }
            }
            Rep::Compact { boff, bytes } => {
                for i in rows {
                    scratch.clear();
                    decode_row(&bytes[boff[i] as usize..boff[i + 1] as usize], scratch);
                    f(i as u32, scratch);
                }
            }
            Rep::Spilled { .. } => unreachable!("spilled stores are streamed, not transposed"),
        }
    }

    /// Row ranges of at most [`STREAM_CHUNK_BYTES`] encoded bytes each
    /// (every range holds at least one row), covering all rows ascending.
    pub(crate) fn chunks(&self) -> Vec<Range<usize>> {
        let boff: &[u64] = match &self.rep {
            Rep::Plain { off, .. } => {
                // Plain stores are chunked by equivalent byte volume.
                let n = off.len() - 1;
                let mut out = Vec::new();
                let mut r = 0usize;
                while r < n {
                    let start = off[r] as usize;
                    let mut end = r + 1;
                    while end < n && (off[end + 1] as usize - start) * 4 <= STREAM_CHUNK_BYTES {
                        end += 1;
                    }
                    out.push(r..end);
                    r = end;
                }
                return out;
            }
            Rep::Compact { boff, .. } | Rep::Spilled { boff, .. } => boff,
        };
        let n = boff.len() - 1;
        let mut out = Vec::new();
        let mut r = 0usize;
        while r < n {
            let start = boff[r];
            let mut end = r + 1;
            while end < n && boff[end + 1] - start <= STREAM_CHUNK_BYTES as u64 {
                end += 1;
            }
            out.push(r..end);
            r = end;
        }
        out
    }

    /// Materialises one chunk's encoded bytes and byte offsets and hands
    /// them to `f(first_row, byte_offsets, bytes)`: `byte_offsets` has one
    /// entry per row plus a sentinel, **global** offsets (subtract
    /// `byte_offsets[0]` to index into `bytes`). For plain stores `bytes`
    /// is empty and `f` should not be used — call sites branch on
    /// [`Self::is_plain`] first.
    fn with_chunk(&self, rows: &Range<usize>, f: impl FnOnce(usize, &[u64], &[u8])) {
        match &self.rep {
            Rep::Plain { .. } => unreachable!("plain stores are sliced directly"),
            Rep::Compact { boff, bytes } => {
                let b = &boff[rows.start..rows.end + 1];
                f(
                    rows.start,
                    b,
                    &bytes[b[0] as usize..b[b.len() - 1] as usize],
                );
            }
            Rep::Spilled {
                boff,
                file,
                file_len,
                tail,
                ..
            } => {
                let b = &boff[rows.start..rows.end + 1];
                let (start, end) = (b[0], b[b.len() - 1]);
                if start >= *file_len {
                    let s = (start - file_len) as usize;
                    let e = (end - file_len) as usize;
                    f(rows.start, b, &tail[s..e]);
                } else if end <= *file_len {
                    let mut buf = vec![0u8; (end - start) as usize];
                    read_at(file, &mut buf, start).expect("spill file read");
                    f(rows.start, b, &buf);
                } else {
                    // Chunk straddles the boundary: splice file + tail.
                    let mut buf = vec![0u8; (end - start) as usize];
                    let split = (file_len - start) as usize;
                    read_at(file, &mut buf[..split], start).expect("spill file read");
                    buf[split..].copy_from_slice(&tail[..(end - file_len) as usize]);
                    f(rows.start, b, &buf);
                }
            }
        }
    }

    /// Processes every row of `rows` (a chunk from [`Self::chunks`]) in
    /// **descending** id order: `f(row, successor_ids)`. One chunk is
    /// decoded into memory at a time, so iterating `chunks()` in reverse
    /// yields a full descending sweep with bounded residency — the
    /// backward-propagation pass of the streaming `Pre*` fixpoint.
    pub(crate) fn for_rows_desc(&self, rows: &Range<usize>, mut f: impl FnMut(usize, &[u32])) {
        if let Rep::Plain { off, ids } = &self.rep {
            for i in rows.clone().rev() {
                f(i, &ids[off[i] as usize..off[i + 1] as usize]);
            }
            return;
        }
        self.with_chunk(rows, |first_row, boff, bytes| {
            let base = boff[0];
            let mut scratch = Vec::new();
            for k in (0..boff.len() - 1).rev() {
                scratch.clear();
                decode_row(
                    &bytes[(boff[k] - base) as usize..(boff[k + 1] - base) as usize],
                    &mut scratch,
                );
                f(first_row + k, &scratch);
            }
        });
    }
}

/// Accumulates successor rows during exploration and finishes into an
/// [`EdgeStore`]. Starts plain; migrates to the compact encoding when the
/// requested [`EdgeEncoding`] (or the edge threshold, or a memory budget)
/// says so; flushes compact segments to a temp file under a budget.
pub(crate) struct EdgeBuilder {
    encoding: EdgeEncoding,
    budget: Option<usize>,
    compact: bool,
    off: Vec<u32>,
    ids: Vec<u32>,
    boff: Vec<u64>,
    buf: Vec<u8>,
    spill: Option<(File, PathBuf)>,
    file_len: u64,
    edges: u64,
}

impl EdgeBuilder {
    pub(crate) fn new(encoding: EdgeEncoding, budget: Option<usize>) -> Self {
        let compact = matches!(encoding, EdgeEncoding::Compact) || budget.is_some();
        EdgeBuilder {
            encoding,
            budget,
            compact,
            off: if compact { Vec::new() } else { vec![0] },
            ids: Vec::new(),
            boff: if compact { vec![0] } else { Vec::new() },
            buf: Vec::new(),
            spill: None,
            file_len: 0,
            edges: 0,
        }
    }

    /// Total edges pushed so far (the work-gate's degree statistics).
    pub(crate) fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Appends the sorted, deduplicated successor row of the next
    /// configuration.
    pub(crate) fn push_row(&mut self, row: &[u32]) -> std::io::Result<()> {
        self.edges += row.len() as u64;
        if !self.compact {
            self.ids.extend_from_slice(row);
            self.off.push(self.ids.len() as u32);
            if matches!(self.encoding, EdgeEncoding::Auto)
                && self.ids.len() >= COMPACT_EDGE_THRESHOLD
            {
                self.migrate_to_compact();
            }
            return Ok(());
        }
        encode_row(&mut self.buf, row);
        self.boff.push(self.file_len + self.buf.len() as u64);
        self.maybe_flush()
    }

    /// Re-encodes the accumulated plain rows compactly (the `Auto`
    /// threshold crossing); the plain vectors are freed.
    fn migrate_to_compact(&mut self) {
        self.boff = Vec::with_capacity(self.off.len());
        self.boff.push(0);
        for w in self.off.windows(2) {
            encode_row(&mut self.buf, &self.ids[w[0] as usize..w[1] as usize]);
            self.boff.push(self.buf.len() as u64);
        }
        self.off = Vec::new();
        self.ids = Vec::new();
        self.compact = true;
    }

    /// Under a budget, flushes the in-memory segment once it exceeds half
    /// the budget — so the resident encoded bytes stay at roughly
    /// `budget / 2` and every flush boundary is a row boundary.
    fn maybe_flush(&mut self) -> std::io::Result<()> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        let chunk = (budget / 2).max(512);
        if self.buf.len() < chunk {
            return Ok(());
        }
        if self.spill.is_none() {
            self.spill = Some(create_spill_file()?);
        }
        let (file, _) = self.spill.as_mut().expect("spill file just created");
        file.write_all(&self.buf)?;
        self.file_len += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    pub(crate) fn finish(self) -> EdgeStore {
        let rep = if !self.compact {
            Rep::Plain {
                off: self.off,
                ids: self.ids,
            }
        } else if let Some((file, path)) = self.spill {
            Rep::Spilled {
                boff: self.boff,
                file,
                path,
                file_len: self.file_len,
                tail: self.buf,
            }
        } else {
            Rep::Compact {
                boff: self.boff,
                bytes: self.buf,
            }
        };
        EdgeStore {
            rep,
            edges: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<u32>> {
        (0..200u32)
            .map(|i| (0..i % 7).map(|k| i + k * (1 + i % 13)).collect())
            .collect()
    }

    fn build(encoding: EdgeEncoding, budget: Option<usize>) -> EdgeStore {
        let mut b = EdgeBuilder::new(encoding, budget);
        for row in rows() {
            b.push_row(&row).unwrap();
        }
        b.finish()
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encodings_agree_on_every_row() {
        let plain = build(EdgeEncoding::Plain, None);
        let compact = build(EdgeEncoding::Compact, None);
        let spilled = build(EdgeEncoding::Auto, Some(64));
        assert!(plain.is_plain() && !compact.is_plain() && !spilled.is_plain());
        assert!(spilled.is_spilled() && spilled.spilled_bytes() > 0);
        assert_eq!(plain.rows(), compact.rows());
        assert_eq!(plain.rows(), spilled.rows());
        assert_eq!(plain.edge_count(), compact.edge_count());
        for i in 0..plain.rows() {
            assert_eq!(plain.row(i), compact.row(i), "row {i}");
            assert_eq!(plain.row(i), spilled.row(i), "row {i}");
        }
    }

    #[test]
    fn streaming_matches_random_access() {
        for store in [
            build(EdgeEncoding::Plain, None),
            build(EdgeEncoding::Compact, None),
            build(EdgeEncoding::Auto, Some(64)),
        ] {
            let mut seen = 0usize;
            store.for_each_row(|i, row| {
                assert_eq!(store.row(i as usize), *row, "row {i}");
                seen += 1;
            });
            assert_eq!(seen, store.rows());
            // Descending sweep covers the same rows in reverse.
            let mut desc: Vec<usize> = Vec::new();
            for chunk in store.chunks().into_iter().rev() {
                store.for_rows_desc(&chunk, |i, row| {
                    assert_eq!(store.row(i), *row);
                    desc.push(i);
                });
            }
            assert_eq!(desc.len(), store.rows());
            assert!(desc.windows(2).all(|w| w[0] > w[1]));
        }
    }

    #[test]
    fn auto_migrates_above_threshold() {
        // A miniature threshold is not configurable, so exercise the
        // migration path directly.
        let mut b = EdgeBuilder::new(EdgeEncoding::Plain, None);
        for row in rows() {
            b.push_row(&row).unwrap();
        }
        b.migrate_to_compact();
        let store = b.finish();
        let plain = build(EdgeEncoding::Plain, None);
        assert!(!store.is_plain());
        for i in 0..plain.rows() {
            assert_eq!(plain.row(i), store.row(i));
        }
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let store = build(EdgeEncoding::Auto, Some(64));
        let path = match &store.rep {
            Rep::Spilled { path, .. } => path.clone(),
            _ => panic!("expected a spilled store"),
        };
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }
}
