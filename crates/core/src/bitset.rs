//! A dense fixed-capacity bitset used by the `Pre*` fixpoint machinery.
//!
//! The exact deciders run backward-reachability fixpoints over
//! configuration graphs with up to millions of nodes; representing the
//! "in set" flags one bit per configuration (instead of one `bool`, let
//! alone a `HashSet`) keeps those fixpoints cache-resident.

/// A fixed-length bitset backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a bitset from per-element flags.
    pub fn from_bools(flags: &[bool]) -> Self {
        let mut set = BitSet::new(flags.len());
        for (i, &b) in flags.iter().enumerate() {
            if b {
                set.insert(i);
            }
        }
        set
    }

    /// Number of bits.
    #[allow(dead_code)] // part of the container API; used by tests
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero bits of capacity.
    #[allow(dead_code)] // part of the container API; used by tests
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`; returns whether it was newly set.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Number of set bits.
    #[allow(dead_code)] // part of the container API; used by tests
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Per-element flags (for the slice-of-`bool` public APIs).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.contains(i)).collect()
    }

    /// Unions `other` into `self` word-by-word; returns whether any bit
    /// changed. Both sets must have the same length.
    ///
    /// This is the merge primitive of the frontier-parallel `Pre*`
    /// fixpoint: per-thread discovery sets are combined with word-wide ORs
    /// instead of bit-by-bit inserts.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = 0u64;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            changed |= o & !*w;
            *w |= o;
        }
        changed != 0
    }

    /// Clears every bit of `other` from `self` (`self &= !other`). Both
    /// sets must have the same length.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Flips every bit in place.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        // Clear the tail beyond `len`.
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0) && !s.contains(129));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert_eq!(s.count_ones(), 3);
        assert!(s.any());
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn from_bools_round_trips() {
        let flags: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let s = BitSet::from_bools(&flags);
        assert_eq!(s.to_bools(), flags);
        assert_eq!(s.count_ones(), flags.iter().filter(|&&b| b).count());
    }

    #[test]
    fn negate_respects_length() {
        let mut s = BitSet::new(67);
        s.insert(3);
        s.negate();
        assert!(!s.contains(3));
        assert_eq!(s.count_ones(), 66);
        s.negate();
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_bitset() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.any());
        assert_eq!(s.iter_ones().count(), 0);
    }
}
