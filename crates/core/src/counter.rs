//! Counter-abstracted configuration spaces: dense count vectors over
//! (twin-cell, state) pairs, plus the run-length ring abstraction for
//! cycles.
//!
//! # The abstraction
//!
//! On a graph whose [`TwinPartition`] has non-singleton cells, a
//! configuration `C : V → Q` can be replaced by its **count vector**
//! `#C : (cell, state) → ℕ`. Under a *saturated* partition (which the twin
//! partition is by construction — see `wam_graph::partition`) the clipped
//! view of a node depends only on its own cell, its own state and `#C`:
//! every other cell is seen either fully or not at all. Two configurations
//! with equal count vectors are therefore related by a cell-preserving
//! node permutation, and every cell-preserving permutation is an
//! automorphism of the graph. The counter space is exactly the orbit
//! quotient of the configuration space under that Young subgroup of
//! `Aut(G)`, so by the equivariance argument of `wam-core::symmetry`
//! exploring it preserves `Pre*`, the stable-consensus sets, and the
//! verdict — while collapsing `|Q|^n` configurations to
//! `O(n^{|Q|·cells})` count vectors.
//!
//! Successors apply **single-node** count moves: one node of cell `o`
//! steps from `p` to `q = δ(p, view)`, i.e. `#C' = #C - (o,p) + (o,q)`.
//! Batched Presburger moves (`k ≥ 1` nodes at once) reach the same final
//! counts but *skip the intermediate vectors*, which the stable-consensus
//! fixpoints must see — so exactness demands `k = 1`; the batched variant
//! is sound only for plain reachability, not for verdicts.
//!
//! The precondition is rejected, not assumed: [`CounterSystem::new`]
//! returns [`CounterError::NoTwins`] on twin-free graphs (e.g. cycles of
//! length ≥ 5), where counting is genuinely unsound — on a 6-cycle,
//! `AAABBB` and `ABABAB` have equal counts but disjoint view sets.
//!
//! # Rings
//!
//! Cycles get their own exact abstraction instead: a [`RingConfig`] is the
//! run-length encoding of the state word around the cycle, canonicalised
//! under rotation and reflection of the run list. That is *structurally*
//! the orbit quotient under the full dihedral group `Aut(C_n) = D_n`, but
//! costs `O(m²)` on `m` runs per canonicalisation instead of enumerating
//! the `2n` group elements against `n`-vectors — which is what lets the
//! flood-family predicates run on 10³–10⁴-node cycles.

use crate::explore::TransitionSystem;
use crate::{Machine, Neighbourhood, Output, State};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use wam_graph::{Graph, NodeId, TwinPartition};

/// Why a counter-abstracted backend refused a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CounterError {
    /// The twin partition of the graph is all singletons, so the count
    /// abstraction neither compresses nor (on e.g. long cycles) stays
    /// sound. Contains the node count of the offending graph.
    NoTwins {
        /// Number of nodes of the rejected graph.
        nodes: usize,
    },
    /// The graph is not a single cycle (some node has degree ≠ 2), so the
    /// ring abstraction does not apply.
    NotACycle,
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::NoTwins { nodes } => write!(
                f,
                "twin partition of the {nodes}-node graph is all singletons: \
                 the counter abstraction would be unsound"
            ),
            CounterError::NotACycle => f.write_str("graph is not a single cycle"),
        }
    }
}

impl Error for CounterError {}

/// A count vector `(cell, state) → ℕ`: the counter abstraction of a
/// configuration. Entries are sorted by `(cell, state)` and strictly
/// positive, so equal multisets are structurally equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterConfig<S> {
    entries: Vec<(u16, S, u64)>,
}

impl<S: State> CounterConfig<S> {
    /// Builds a count vector from `(cell, state, count)` triples,
    /// aggregating duplicates and dropping zero counts.
    pub fn from_entries<I: IntoIterator<Item = (u16, S, u64)>>(entries: I) -> Self {
        let mut agg: BTreeMap<(u16, S), u64> = BTreeMap::new();
        for (cell, state, count) in entries {
            if count > 0 {
                *agg.entry((cell, state)).or_default() += count;
            }
        }
        CounterConfig {
            entries: agg.into_iter().map(|((o, s), c)| (o, s, c)).collect(),
        }
    }

    /// The sorted `(cell, state, count)` entries, counts ≥ 1.
    pub fn entries(&self) -> &[(u16, S, u64)] {
        &self.entries
    }

    /// Total node count `Σ counts`.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, _, c)| c).sum()
    }

    /// The count of nodes of `cell` in `state`.
    pub fn count(&self, cell: u16, state: &S) -> u64 {
        self.entries
            .iter()
            .find(|(o, s, _)| *o == cell && s == state)
            .map(|(_, _, c)| *c)
            .unwrap_or(0)
    }

    /// The vector with `delta` applied: each `((cell, state), d)` adds `d`
    /// to that entry. Used by the rendezvous counter backend in
    /// `wam-extensions` as well as [`CounterSystem`] itself.
    ///
    /// # Panics
    ///
    /// Panics if any entry would go negative.
    pub fn adjust<I: IntoIterator<Item = ((u16, S), i64)>>(&self, delta: I) -> Self {
        let mut agg: BTreeMap<(u16, S), i64> = self
            .entries
            .iter()
            .map(|(o, s, c)| ((*o, s.clone()), *c as i64))
            .collect();
        for (key, d) in delta {
            *agg.entry(key).or_default() += d;
        }
        CounterConfig {
            entries: agg
                .into_iter()
                .filter(|&(_, c)| c != 0)
                .map(|((o, s), c)| {
                    assert!(c > 0, "count vector entry went negative");
                    (o, s, c as u64)
                })
                .collect(),
        }
    }
}

/// The counter-abstracted transition system of a plain machine under
/// exclusive selection: configurations are [`CounterConfig`] vectors over
/// the graph's [`TwinPartition`], successors move one node at a time.
/// Exact — orbit-equivalent to [`ExclusiveSystem`](crate::ExclusiveSystem)
/// — by the saturation argument in the module docs.
#[derive(Debug)]
pub struct CounterSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
    partition: TwinPartition,
}

impl<'a, S: State> CounterSystem<'a, S> {
    /// Wraps a machine and a graph, computing the twin partition.
    ///
    /// # Errors
    ///
    /// [`CounterError::NoTwins`] if the partition is all singletons
    /// (abstraction would be useless and, in general, unsound to coarsen).
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Result<Self, CounterError> {
        let partition = TwinPartition::of(graph);
        if !partition.is_compressing() {
            return Err(CounterError::NoTwins {
                nodes: graph.node_count(),
            });
        }
        Ok(CounterSystem {
            machine,
            graph,
            partition,
        })
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'a Machine<S> {
        self.machine
    }

    /// The communication graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The saturated partition the counts run over.
    pub fn partition(&self) -> &TwinPartition {
        &self.partition
    }

    /// The abstraction map α: the count vector of an explicit
    /// configuration (used by the differential suite).
    pub fn abstract_config(&self, states: &[S]) -> CounterConfig<S> {
        assert_eq!(states.len(), self.graph.node_count());
        CounterConfig::from_entries(
            states
                .iter()
                .enumerate()
                .map(|(v, s)| (self.partition.cell_of(v), s.clone(), 1)),
        )
    }

    /// The β-clipped view of a node of `cell` in state `state` under `c` —
    /// well defined by saturation.
    fn view(&self, c: &CounterConfig<S>, cell: u16, state: &S) -> Neighbourhood<S> {
        let counts = c.entries().iter().filter_map(|(o, q, k)| {
            let k = if *o == cell {
                if !self.partition.cell(cell).closed {
                    return None; // own independent cell: members not adjacent
                }
                k - u64::from(q == state) // clique cell: all members minus self
            } else if self.partition.cells_adjacent(cell, *o) {
                *k
            } else {
                return None;
            };
            Some((q.clone(), k))
        });
        Neighbourhood::from_counts(counts, self.machine.beta())
    }

    fn consensus(&self, c: &CounterConfig<S>, want: Output) -> bool {
        c.entries()
            .iter()
            .all(|(_, s, _)| self.machine.output(s) == want)
    }
}

impl<S: State> TransitionSystem for CounterSystem<'_, S> {
    type C = CounterConfig<S>;

    fn initial_config(&self) -> CounterConfig<S> {
        CounterConfig::from_entries(self.graph.nodes().map(|v| {
            (
                self.partition.cell_of(v),
                self.machine.initial(self.graph.label(v)),
                1,
            )
        }))
    }

    fn successors(&self, c: &CounterConfig<S>) -> Vec<CounterConfig<S>> {
        let mut out = Vec::new();
        for (cell, p, _) in c.entries() {
            let view = self.view(c, *cell, p);
            let q = self.machine.step(p, &view);
            if q != *p {
                out.push(c.adjust([((*cell, p.clone()), -1), ((*cell, q), 1)]));
            }
        }
        out
    }

    fn is_accepting(&self, c: &CounterConfig<S>) -> bool {
        self.consensus(c, Output::Accept)
    }

    fn is_rejecting(&self, c: &CounterConfig<S>) -> bool {
        self.consensus(c, Output::Reject)
    }
}

/// A necklace: the run-length encoding of the state word around a cycle,
/// canonical under rotation and reflection of the run list. Two explicit
/// cycle configurations map to the same `RingConfig` iff they are related
/// by an element of the dihedral group `D_n = Aut(C_n)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RingConfig<S> {
    runs: Vec<(S, u32)>,
}

impl<S: State> RingConfig<S> {
    /// Builds the canonical necklace of a state word (in cycle order).
    ///
    /// # Panics
    ///
    /// Panics if `word` is empty.
    pub fn from_word(word: &[S]) -> Self {
        assert!(!word.is_empty(), "empty ring");
        let mut runs: Vec<(S, u32)> = Vec::new();
        for s in word {
            match runs.last_mut() {
                Some((t, c)) if t == s => *c += 1,
                _ => runs.push((s.clone(), 1)),
            }
        }
        Self::normalise(runs)
    }

    /// Builds the canonical necklace from a run list (states with positive
    /// lengths, in cycle order). Zero-length runs are dropped, adjacent
    /// equal-state runs merged; the input need not be canonical.
    pub fn from_runs<I: IntoIterator<Item = (S, u32)>>(runs: I) -> Self {
        Self::normalise(runs.into_iter().collect())
    }

    /// Merges adjacent equal-state runs (including across the wraparound)
    /// and canonicalises under rotation + reflection.
    fn normalise(mut runs: Vec<(S, u32)>) -> Self {
        runs.retain(|&(_, c)| c > 0);
        // Merge adjacent duplicates left over from surgery.
        let mut merged: Vec<(S, u32)> = Vec::with_capacity(runs.len());
        for (s, c) in runs {
            match merged.last_mut() {
                Some((t, acc)) if *t == s => *acc += c,
                _ => merged.push((s, c)),
            }
        }
        // Wraparound merge.
        while merged.len() >= 2 && merged.first().map(|(s, _)| s) == merged.last().map(|(s, _)| s) {
            let (_, c) = merged.pop().unwrap();
            merged[0].1 += c;
        }
        // Canonical form: lexicographic minimum over all rotations of the
        // run list and of its reversal. O(m²) on m runs.
        if merged.len() <= 1 {
            return RingConfig { runs: merged };
        }
        let mut best = merged.clone();
        let mut reversed = merged.clone();
        reversed.reverse();
        for candidate in [&merged, &reversed] {
            for shift in 0..candidate.len() {
                let mut rotated: Vec<(S, u32)> = Vec::with_capacity(candidate.len());
                rotated.extend_from_slice(&candidate[shift..]);
                rotated.extend_from_slice(&candidate[..shift]);
                if rotated < best {
                    best = rotated;
                }
            }
        }
        RingConfig { runs: best }
    }

    /// The canonical run list.
    pub fn runs(&self) -> &[(S, u32)] {
        &self.runs
    }

    /// Total node count `Σ run lengths`.
    pub fn total(&self) -> u64 {
        self.runs.iter().map(|&(_, c)| c as u64).sum()
    }
}

/// The ring transition system: exclusive-selection machine semantics on a
/// cycle, explored over canonical necklaces — structurally the orbit
/// quotient under the full dihedral group, exact for every machine.
#[derive(Debug)]
pub struct RingSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
    /// Node ids in cycle order (node order in the `Graph` need not be).
    order: Vec<NodeId>,
}

impl<'a, S: State> RingSystem<'a, S> {
    /// Wraps a machine and a cycle graph.
    ///
    /// # Errors
    ///
    /// [`CounterError::NotACycle`] if some node has degree ≠ 2. (Connected
    /// 2-regular graphs are single cycles, and `Graph` is connected by
    /// construction.)
    pub fn new(machine: &'a Machine<S>, graph: &'a Graph) -> Result<Self, CounterError> {
        if graph.nodes().any(|v| graph.degree(v) != 2) {
            return Err(CounterError::NotACycle);
        }
        // Walk the cycle from node 0.
        let mut order = Vec::with_capacity(graph.node_count());
        let (mut prev, mut cur) = (0, 0);
        loop {
            order.push(cur);
            let ns = graph.neighbours(cur);
            let next = if ns[0] != prev { ns[0] } else { ns[1] };
            prev = cur;
            cur = next;
            if cur == 0 {
                break;
            }
        }
        debug_assert_eq!(order.len(), graph.node_count());
        Ok(RingSystem {
            machine,
            graph,
            order,
        })
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &'a Machine<S> {
        self.machine
    }

    /// The communication graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The abstraction map α: the canonical necklace of an explicit
    /// configuration (`states` indexed by node id).
    pub fn abstract_config(&self, states: &[S]) -> RingConfig<S> {
        assert_eq!(states.len(), self.graph.node_count());
        let word: Vec<S> = self.order.iter().map(|&v| states[v].clone()).collect();
        RingConfig::from_word(&word)
    }

    fn view(&self, a: &S, b: &S) -> Neighbourhood<S> {
        Neighbourhood::from_states([a.clone(), b.clone()], self.machine.beta())
    }

    /// The run list with run `i` replaced by `patch`, re-normalised.
    fn surgery(&self, runs: &[(S, u32)], i: usize, patch: &[(S, u32)]) -> RingConfig<S> {
        let mut next: Vec<(S, u32)> = Vec::with_capacity(runs.len() + patch.len());
        next.extend_from_slice(&runs[..i]);
        next.extend_from_slice(patch);
        next.extend_from_slice(&runs[i + 1..]);
        RingConfig::normalise(next)
    }

    fn consensus(&self, c: &RingConfig<S>, want: Output) -> bool {
        c.runs().iter().all(|(s, _)| self.machine.output(s) == want)
    }
}

impl<S: State> TransitionSystem for RingSystem<'_, S> {
    type C = RingConfig<S>;

    fn initial_config(&self) -> RingConfig<S> {
        let word: Vec<S> = self
            .order
            .iter()
            .map(|&v| self.machine.initial(self.graph.label(v)))
            .collect();
        RingConfig::from_word(&word)
    }

    fn successors(&self, c: &RingConfig<S>) -> Vec<RingConfig<S>> {
        let runs = c.runs();
        let m = runs.len();
        let mut out = Vec::new();
        for i in 0..m {
            let (p, len) = &runs[i];
            let (len, p) = (*len, p);
            // Neighbouring states of this run's boundary nodes; for a
            // single run the whole cycle is in state p.
            let a = &runs[(i + m - 1) % m].0;
            let b = &runs[(i + 1) % m].0;
            let (a, b) = if m == 1 { (p, p) } else { (a, b) };
            if len == 1 {
                let q = self.machine.step(p, &self.view(a, b));
                if q != *p {
                    out.push(self.surgery(runs, i, &[(q, 1)]));
                }
            } else {
                // Left boundary node: sees a and p.
                let q = self.machine.step(p, &self.view(a, p));
                if q != *p {
                    out.push(self.surgery(runs, i, &[(q.clone(), 1), (p.clone(), len - 1)]));
                }
                // Right boundary node: sees p and b.
                let q = self.machine.step(p, &self.view(p, b));
                if q != *p {
                    out.push(self.surgery(runs, i, &[(p.clone(), len - 1), (q, 1)]));
                }
                // Interior nodes: see {p, p}; each split position is a
                // distinct successor necklace.
                if len >= 3 {
                    let q = self.machine.step(p, &self.view(p, p));
                    if q != *p {
                        for k in 1..=len - 2 {
                            out.push(self.surgery(
                                runs,
                                i,
                                &[(p.clone(), k), (q.clone(), 1), (p.clone(), len - 1 - k)],
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    fn is_accepting(&self, c: &RingConfig<S>) -> bool {
        self.consensus(c, Output::Accept)
    }

    fn is_rejecting(&self, c: &RingConfig<S>) -> bool {
        self.consensus(c, Output::Reject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exploration, Verdict};
    use wam_graph::{generators, LabelCount};

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| if s { Output::Accept } else { Output::Reject },
        )
    }

    #[test]
    fn counter_rejects_twin_free_graphs() {
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![5, 1]));
        assert_eq!(
            CounterSystem::new(&m, &g).err(),
            Some(CounterError::NoTwins { nodes: 6 })
        );
    }

    #[test]
    fn counter_flood_on_clique_matches_explicit_verdict() {
        let m = flood();
        for counts in [vec![3u64, 1], vec![4, 0], vec![2, 2]] {
            let g = generators::labelled_clique(&LabelCount::from_vec(counts.clone()));
            let sys = CounterSystem::new(&m, &g).unwrap();
            let e = Exploration::explore(&sys, 100_000).unwrap();
            let expect = Exploration::explore(&crate::ExclusiveSystem::new(&m, &g), 100_000)
                .unwrap()
                .verdict();
            assert_eq!(e.verdict(), expect, "{counts:?}");
        }
    }

    #[test]
    fn counter_space_is_small_on_large_cliques() {
        // Flood on an n-clique: counts of (true, false) with true ≥ 1 once
        // seeded — the reachable counter space is O(n), not O(2ⁿ).
        let m = flood();
        let g = generators::labelled_clique(&LabelCount::from_vec(vec![40, 1]));
        let sys = CounterSystem::new(&m, &g).unwrap();
        let e = Exploration::explore(&sys, 10_000).unwrap();
        assert_eq!(e.verdict(), Verdict::Accepts);
        assert!(e.len() <= 42, "len = {}", e.len());
    }

    #[test]
    fn abstraction_map_respects_initial() {
        let m = flood();
        let g = generators::labelled_star(&LabelCount::from_vec(vec![4, 2]));
        let sys = CounterSystem::new(&m, &g).unwrap();
        let explicit = crate::Config::initial(&m, &g);
        assert_eq!(sys.abstract_config(explicit.states()), sys.initial_config());
    }

    #[test]
    fn ring_rejects_non_cycles() {
        let m = flood();
        let g = generators::labelled_star(&LabelCount::from_vec(vec![4]));
        assert_eq!(RingSystem::new(&m, &g).err(), Some(CounterError::NotACycle));
    }

    #[test]
    fn ring_flood_matches_explicit_on_small_cycles() {
        let m = flood();
        for counts in [vec![5u64, 1], vec![6, 0], vec![3, 3], vec![2, 2]] {
            let g = generators::labelled_cycle(&LabelCount::from_vec(counts.clone()));
            let sys = RingSystem::new(&m, &g).unwrap();
            let e = Exploration::explore(&sys, 100_000).unwrap();
            let expect = Exploration::explore(&crate::ExclusiveSystem::new(&m, &g), 1_000_000)
                .unwrap()
                .verdict();
            assert_eq!(e.verdict(), expect, "{counts:?}");
        }
    }

    #[test]
    fn ring_flood_scales_to_large_cycles() {
        // Reachable necklaces of flooding on C_n: O(n) runs-of-true arcs.
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![200, 1]));
        let sys = RingSystem::new(&m, &g).unwrap();
        let e = Exploration::explore(&sys, 100_000).unwrap();
        assert_eq!(e.verdict(), Verdict::Accepts);
        assert!(e.len() <= 2 * 201, "len = {}", e.len());
    }

    #[test]
    fn necklace_canonical_under_rotation_and_reflection() {
        let w1 = [0u8, 0, 1, 2];
        let w2 = [1u8, 2, 0, 0]; // rotation
        let w3 = [2u8, 1, 0, 0]; // reflection
        let c1 = RingConfig::from_word(&w1);
        assert_eq!(c1, RingConfig::from_word(&w2));
        assert_eq!(c1, RingConfig::from_word(&w3));
        assert_eq!(c1.total(), 4);
        // But a genuinely different necklace stays different.
        let w4 = [0u8, 1, 0, 2];
        assert_ne!(c1, RingConfig::from_word(&w4));
    }

    #[test]
    fn counter_config_adjust_roundtrips() {
        let c = CounterConfig::from_entries([(0u16, 'a', 3), (1, 'b', 1)]);
        let moved = c.adjust([((0, 'a'), -1), ((0, 'c'), 1)]);
        assert_eq!(moved.count(0, &'a'), 2);
        assert_eq!(moved.count(0, &'c'), 1);
        assert_eq!(moved.total(), 4);
        let back = moved.adjust([((0, 'c'), -1), ((0, 'a'), 1)]);
        assert_eq!(back, c);
    }
}
