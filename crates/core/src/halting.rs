//! Halting acceptance: absorption checks and the halting wrapper.
//!
//! A machine is *halting* if accepting and rejecting states are absorbing:
//! `δ(q, P) = q` whenever `q ∈ Y ∪ N`. Halting acceptance is a special case
//! of stable consensus. Absorption over *all* neighbourhood functions cannot
//! be checked without enumerating `[β]^Q`, so this module offers (a) a
//! runtime check over an explored configuration space, and (b) a wrapper
//! that forces absorption, turning any machine into a halting one with the
//! same Y/N sets.

use crate::{Config, Exploration, Machine, Output, State};
use wam_graph::{Graph, NodeId};

/// A witnessed violation of the halting condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaltingViolation {
    /// Index of the configuration (in the exploration) where it occurred.
    pub config: usize,
    /// The node that left an accepting/rejecting state.
    pub node: NodeId,
}

/// Scans an explored configuration space for transitions in which a node
/// leaves an accepting or rejecting state. Returns all violations found.
///
/// An empty result proves the machine halting *on the explored space* (which
/// is what matters for the graph at hand); it is not a proof for all graphs.
pub fn halting_violations<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    exploration: &Exploration<Config<S>>,
) -> Vec<HaltingViolation> {
    let mut out = Vec::new();
    for (i, config) in exploration.configs().iter().enumerate() {
        for v in graph.nodes() {
            let s = config.state(v);
            if machine.output(s) == Output::Neutral {
                continue;
            }
            let stepped = config.stepped_state(machine, graph, v);
            if stepped != *s {
                out.push(HaltingViolation { config: i, node: v });
            }
        }
    }
    out
}

/// Forces the halting condition: once a node's state is accepting or
/// rejecting, it never moves again. Dynamics in neutral states are unchanged.
///
/// This is the canonical way to build `xaz`-class machines in this workspace:
/// design the consensus dynamics, then wrap.
pub fn make_halting<S: State>(machine: &Machine<S>) -> Machine<S> {
    let inner = machine.clone();
    let inner_out = machine.clone();
    Machine::new(
        machine.beta(),
        {
            let m = machine.clone();
            move |l| m.initial(l)
        },
        move |s, n| {
            if inner.output(s) != Output::Neutral {
                s.clone()
            } else {
                inner.step(s, n)
            }
        },
        move |s| inner_out.output(s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Output, Verdict};
    use wam_graph::generators;

    /// A non-halting machine: accepting state 1 steps back to 0.
    fn wobbly() -> Machine<u8> {
        Machine::new(
            1,
            |_| 0u8,
            |&s, _| if s == 0 { 1 } else { 0 },
            |&s| {
                if s == 1 {
                    Output::Accept
                } else {
                    Output::Neutral
                }
            },
        )
    }

    #[test]
    fn violations_found_for_non_halting_machine() {
        let g = generators::cycle(3);
        let m = wobbly();
        let sys = crate::ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 1000).unwrap();
        let v = halting_violations(&m, &g, &e);
        assert!(!v.is_empty());
    }

    #[test]
    fn wrapper_absorbs() {
        let g = generators::cycle(3);
        let m = make_halting(&wobbly());
        let sys = crate::ExclusiveSystem::new(&m, &g);
        let e = Exploration::explore(&sys, 1000).unwrap();
        assert!(halting_violations(&m, &g, &e).is_empty());
        // Once everyone halts in 1, the consensus is stable.
        let (v, _) = crate::decide(
            &m,
            &g,
            crate::Schedule::PseudoStochastic,
            crate::Backend::Auto,
            crate::ExploreOptions::with_limit(1000),
        )
        .unwrap();
        assert_eq!(v, Verdict::Accepts);
    }

    #[test]
    fn wrapper_preserves_neutral_dynamics() {
        let m = make_halting(&wobbly());
        let n = crate::Neighbourhood::from_states(Vec::<u8>::new(), 1);
        assert_eq!(m.step(&0, &n), 1);
        assert_eq!(m.step(&1, &n), 1); // absorbed
    }
}
