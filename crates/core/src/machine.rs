//! Distributed machines `M = (Q, δ₀, δ, Y, N)` with counting bound β.

use crate::Neighbourhood;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;
use wam_graph::Label;

/// Marker trait for machine states.
///
/// Blanket-implemented: any `Clone + Ord + Hash + Debug + Send + Sync +
/// 'static` type is a state. Constructions in this workspace use structural
/// states (nested enums/tuples) so that products and simulation compilers
/// never have to enumerate their state spaces. The `Ord` bound gives
/// simulation compilers a canonical tie-breaking order (e.g. the choice
/// function `g` of Lemma 4.7 picks the least available response).
pub trait State: Clone + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static> State for T {}

/// The output classification of a state: accepting (`∈ Y`), rejecting
/// (`∈ N`), or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Output {
    /// The state is in the accepting set `Y`.
    Accept,
    /// The state is in the rejecting set `N`.
    Reject,
    /// The state is in neither set.
    Neutral,
}

/// A distributed machine: counting bound β, initialisation `δ₀ : Λ → Q`,
/// transition `δ : Q × [β]^Q → Q`, and output sets `Y, N` (as a map `Q →`
/// [`Output`]).
///
/// The transition function receives only the β-clipped [`Neighbourhood`],
/// so "detection up to β" holds by construction: a machine physically cannot
/// depend on counts beyond its bound. Machines with β = 1 are the paper's
/// *non-counting* machines.
///
/// Machines are cheaply cloneable (the three functions are shared behind
/// [`Arc`]s) and composable: see [`Machine::map_output`] and
/// [`Machine::tagged`].
pub struct Machine<S: State> {
    beta: u32,
    init: Arc<dyn Fn(Label) -> S + Send + Sync>,
    delta: DeltaFn<S>,
    output: Arc<dyn Fn(&S) -> Output + Send + Sync>,
}

/// A shared transition function `δ : Q × [β]^Q → Q`.
type DeltaFn<S> = Arc<dyn Fn(&S, &Neighbourhood<S>) -> S + Send + Sync>;

impl<S: State> Clone for Machine<S> {
    fn clone(&self) -> Self {
        Machine {
            beta: self.beta,
            init: Arc::clone(&self.init),
            delta: Arc::clone(&self.delta),
            output: Arc::clone(&self.output),
        }
    }
}

impl<S: State> fmt::Debug for Machine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine").field("beta", &self.beta).finish()
    }
}

impl<S: State> Machine<S> {
    /// Creates a machine from its four components.
    ///
    /// # Panics
    ///
    /// Panics if `beta == 0` (the counting bound is positive by definition).
    pub fn new(
        beta: u32,
        init: impl Fn(Label) -> S + Send + Sync + 'static,
        delta: impl Fn(&S, &Neighbourhood<S>) -> S + Send + Sync + 'static,
        output: impl Fn(&S) -> Output + Send + Sync + 'static,
    ) -> Self {
        assert!(beta >= 1, "counting bound must be at least 1");
        Machine {
            beta,
            init: Arc::new(init),
            delta: Arc::new(delta),
            output: Arc::new(output),
        }
    }

    /// The counting bound β.
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// Whether the machine is non-counting (β = 1, detection `d`).
    pub fn is_non_counting(&self) -> bool {
        self.beta == 1
    }

    /// The initial state for a node labelled `label`.
    pub fn initial(&self, label: Label) -> S {
        (self.init)(label)
    }

    /// One application of δ for a node in state `s` observing `n`.
    pub fn step(&self, s: &S, n: &Neighbourhood<S>) -> S {
        (self.delta)(s, n)
    }

    /// The output classification of a state.
    pub fn output(&self, s: &S) -> Output {
        (self.output)(s)
    }

    /// Replaces the output map, keeping dynamics identical.
    pub fn map_output(&self, output: impl Fn(&S) -> Output + Send + Sync + 'static) -> Self {
        Machine {
            beta: self.beta,
            init: Arc::clone(&self.init),
            delta: Arc::clone(&self.delta),
            output: Arc::new(output),
        }
    }

    /// The paper's `P × Q'` product: attaches a static tag to every state.
    /// Transitions act on the machine component and leave the tag untouched;
    /// the tag is derived from the node's label at initialisation.
    ///
    /// The neighbourhood handed to the underlying δ is the projection onto
    /// the machine component (clip-exact; see [`Neighbourhood::project`]).
    pub fn tagged<T: State>(
        &self,
        tag_init: impl Fn(Label) -> T + Send + Sync + 'static,
    ) -> Machine<(S, T)> {
        let init = Arc::clone(&self.init);
        let delta = Arc::clone(&self.delta);
        let output = Arc::clone(&self.output);
        let beta = self.beta;
        Machine::new(
            beta,
            move |l| (init(l), tag_init(l)),
            move |(s, t), n| {
                let projected = n.project(|(s, _)| s.clone());
                (delta(s, &projected), t.clone())
            },
            move |(s, _)| output(s),
        )
    }

    /// Renames states through a bijection-like pair of maps. Useful for
    /// wrapping a machine's states into a larger enum.
    pub fn map_states<T: State>(
        &self,
        into: impl Fn(&S) -> T + Send + Sync + 'static,
        back: impl Fn(&T) -> S + Send + Sync + 'static,
    ) -> Machine<T> {
        let init = Arc::clone(&self.init);
        let delta = Arc::clone(&self.delta);
        let output = Arc::clone(&self.output);
        let into = Arc::new(into);
        let into2 = Arc::clone(&into);
        let back = Arc::new(back);
        let back2 = Arc::clone(&back);
        let back3 = Arc::clone(&back);
        Machine::new(
            self.beta,
            move |l| into(&init(l)),
            move |t, n| {
                let s = back(t);
                let projected = n.project(|t| back2(t));
                into2(&delta(&s, &projected))
            },
            move |t| output(&back3(t)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Neighbourhood;

    fn nbhd(states: &[i32], beta: u32) -> Neighbourhood<i32> {
        Neighbourhood::from_states(states.iter().copied(), beta)
    }

    fn max_machine() -> Machine<i32> {
        // Each node moves to the max of itself and its neighbours.
        Machine::new(
            2,
            |l: Label| l.0 as i32,
            |&s, n| n.states().map(|(t, _)| *t).chain([s]).max().unwrap(),
            |&s| {
                if s > 0 {
                    Output::Accept
                } else {
                    Output::Reject
                }
            },
        )
    }

    #[test]
    fn step_applies_delta() {
        let m = max_machine();
        assert_eq!(m.step(&1, &nbhd(&[0, 3, 2], 2)), 3);
        assert_eq!(m.step(&5, &nbhd(&[0, 3, 2], 2)), 5);
    }

    #[test]
    fn output_classification() {
        let m = max_machine();
        assert_eq!(m.output(&0), Output::Reject);
        assert_eq!(m.output(&7), Output::Accept);
    }

    #[test]
    fn map_output_keeps_dynamics() {
        let m = max_machine().map_output(|_| Output::Neutral);
        assert_eq!(m.step(&1, &nbhd(&[4], 2)), 4);
        assert_eq!(m.output(&7), Output::Neutral);
    }

    #[test]
    fn tagged_product_preserves_tag() {
        let m = max_machine().tagged(|l| l.0);
        let s0 = m.initial(Label(3));
        assert_eq!(s0, (3, 3));
        let n = Neighbourhood::from_states([(7, 0u16)], 2);
        let s1 = m.step(&s0, &n);
        assert_eq!(s1, (7, 3));
    }

    #[test]
    fn map_states_roundtrip() {
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum Wrap {
            V(i32),
        }
        let m = max_machine().map_states(|&s| Wrap::V(s), |Wrap::V(s)| *s);
        let n = Neighbourhood::from_states([Wrap::V(9)], 2);
        assert_eq!(m.step(&Wrap::V(1), &n), Wrap::V(9));
        assert_eq!(m.output(&Wrap::V(0)), Output::Reject);
    }

    #[test]
    #[should_panic(expected = "counting bound")]
    fn zero_beta_rejected() {
        Machine::new(0, |_: Label| 0i32, |&s, _| s, |_| Output::Neutral);
    }
}
