//! The dense successor kernel: interned states, memoized δ-tables, and a
//! packed configuration arena.
//!
//! The machines of the paper only ever observe the β-clipped neighbourhood
//! multiset, and their reachable state sets are tiny — which makes δ fully
//! memoizable and configurations densely packable. The kernel exploits
//! both, per (machine, graph) session:
//!
//! * **State interning**: reachable states get dense `u16` ids in
//!   first-sighting order; outputs (`Accept`/`Reject`/`Neutral`) are
//!   memoized per id, so accept/reject scans are table walks over packed
//!   fields instead of boxed-closure calls over cloned states.
//! * **δ-table memoization**, two-level. The *raw* level handles nodes of
//!   degree at most [`RAW_DEG`]: the whole local view — own state id plus
//!   the neighbour ids in adjacency order — packs into one `u64` key of a
//!   flat `u64 → u16` memo, so the steady-state cost of a node step is a
//!   single hash lookup with no sorting or canonicalisation at all. The
//!   *canonical* level handles the rest: a step is keyed by `(state id,
//!   signature id)`, where a *signature* is the β-clipped count vector of
//!   neighbour state ids (sorted, canonical for the clipped multiset), so
//!   high-degree nodes stay compact under clipping. Either way the first
//!   sighting of a key pays one real `Machine::step` — allocating the
//!   sorted `Neighbourhood` and calling the boxed closure — and every
//!   later sighting is a table lookup.
//! * **Packed configs**: configurations are [`PackedConfig`] rows —
//!   power-of-two bits per node in `u64` words, inline (no heap) for rows
//!   of at most two words. Exclusive successors copy the parent row and
//!   patch one bit-field; interner hashing and equality run word-wise.
//!
//! The per-node bit width must cover every state id, but states are
//! *discovered during* exploration — so the session starts at the smallest
//! power-of-two width covering the initial states and **restarts** when a
//! fresh state overflows it: the overflow flag flips, successor generation
//! drains (returns no successors, finishing the doomed exploration
//! quickly), and the session re-explores at double width. The state and
//! δ tables persist across restarts, so the re-run replays memoized
//! lookups instead of recomputing δ; widths are capped at 16 bits, which
//! covers every possible id, so at most four restarts can ever happen.
//!
//! The kernel is **observationally bit-identical** to exploring
//! [`ExclusiveSystem`](crate::ExclusiveSystem) directly: successors are
//! enumerated in the same node order with the same silent-step skipping,
//! and packing is injective, so interned ids arrive in the same order and
//! verdicts, id order and explored counts all coincide — pinned by the
//! `kernel_differential` suite. (State ids themselves may be assigned in a
//! different order by a multi-threaded run — concurrent δ misses race to
//! the write lock — but no observable depends on the numbering.)

use crate::explore::{
    Exploration, ExploreError, ExploreOptions, SuccBuf, TransitionSystem, Verdict,
};
use crate::{Config, Machine, Neighbourhood, Output, PackedConfig, State};
use rustc_hash::FxHashMap;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::RwLock;
use wam_graph::Graph;

/// Sentinel for a δ-table entry that has not been computed yet.
const UNKNOWN: u16 = u16::MAX;

/// Hard cap on interned states: ids must stay below the [`UNKNOWN`]
/// sentinel. Machines in this workspace have dozens of reachable states;
/// the cap exists so the kernel degrades into a clean refusal (and the
/// decider falls back to the generic engine) instead of a wrong answer.
const MAX_STATES: usize = UNKNOWN as usize;

/// Degree bound of the raw fast path: a local view of at most `1 +
/// RAW_DEG` state ids packs into one `u64` key (four 16-bit lanes).
const RAW_DEG: usize = 3;

/// Open-addressing `u64 → u16` table behind the raw δ memo: linear
/// probing over `(key, value)` pairs, one multiplicative spread and
/// typically one cache line per steady-state lookup — measurably cheaper
/// than a general hash map on the kernel's hottest path. The all-ones
/// key is free to serve as the vacant marker: a real raw key always
/// carries a state id below `0xFFFF` in its low lane.
#[derive(Debug)]
struct RawMap {
    entries: Vec<(u64, u16)>,
    live: usize,
    bits: u32,
}

/// Vacant-slot marker in [`RawMap`]; never a valid raw key.
const RAW_EMPTY: u64 = u64::MAX;

impl RawMap {
    fn new() -> Self {
        const INITIAL_BITS: u32 = 6;
        RawMap {
            entries: vec![(RAW_EMPTY, 0); 1 << INITIAL_BITS],
            live: 0,
            bits: INITIAL_BITS,
        }
    }

    #[inline]
    fn slot(key: u64, bits: u32) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u16> {
        let mask = self.entries.len() - 1;
        let mut idx = Self::slot(key, self.bits) & mask;
        loop {
            let (k, v) = self.entries[idx];
            if k == key {
                return Some(v);
            }
            if k == RAW_EMPTY {
                return None;
            }
            idx = (idx + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, value: u16) {
        if (self.live + 1) * 8 > self.entries.len() * 7 {
            let bits = self.bits + 1;
            let mut next = vec![(RAW_EMPTY, 0u16); 1 << bits];
            let mask = next.len() - 1;
            for &(k, v) in &self.entries {
                if k == RAW_EMPTY {
                    continue;
                }
                let mut idx = Self::slot(k, bits) & mask;
                while next[idx].0 != RAW_EMPTY {
                    idx = (idx + 1) & mask;
                }
                next[idx] = (k, v);
            }
            self.entries = next;
            self.bits = bits;
        }
        let mask = self.entries.len() - 1;
        let mut idx = Self::slot(key, self.bits) & mask;
        while self.entries[idx].0 != RAW_EMPTY {
            if self.entries[idx].0 == key {
                self.entries[idx].1 = value;
                return;
            }
            idx = (idx + 1) & mask;
        }
        self.entries[idx] = (key, value);
        self.live += 1;
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// The memo tables of one kernel session: state interner, per-state
/// outputs, the raw low-degree δ memo, signature interner, and the
/// canonical δ table.
#[derive(Debug)]
struct Tables<S> {
    /// States by dense id, in first-sighting order.
    states: Vec<S>,
    ids: FxHashMap<S, u16>,
    /// Raw δ memo for nodes of degree ≤ [`RAW_DEG`]: the key packs the
    /// node's own state id with its neighbour ids in adjacency order
    /// (unused lanes filled with `0xFFFF`, which is never a real id);
    /// the value is the stepped state id. Finer-grained than the
    /// canonical signature — order and unclipped repeats distinguish
    /// keys — so it stays trivially sound while skipping sorting and
    /// clipping entirely on the hot path.
    raw: RawMap,
    /// Signature interner: the canonical key of a β-clipped neighbour
    /// multiset is its sorted `(sid << 16) | clipped_count` vector.
    sigs: FxHashMap<Box<[u32]>, u32>,
    /// `delta[sig][sid]` memoizes the stepped state id ([`UNKNOWN`] =
    /// never computed). Rows grow lazily as states are discovered.
    delta: Vec<Vec<u16>>,
}

impl<S: State> Tables<S> {
    fn new() -> Self {
        Tables {
            states: Vec::new(),
            ids: FxHashMap::default(),
            raw: RawMap::new(),
            sigs: FxHashMap::default(),
            delta: Vec::new(),
        }
    }

    /// Interns a state, memoizing its output into the session's lock-free
    /// output table; `None` when the `u16` id space is exhausted.
    fn intern_state(&mut self, machine: &Machine<S>, s: S, outputs: &[AtomicU8]) -> Option<u16> {
        if let Some(&id) = self.ids.get(&s) {
            return Some(id);
        }
        if self.states.len() >= MAX_STATES {
            return None;
        }
        let id = self.states.len() as u16;
        outputs[id as usize].store(encode_output(machine.output(&s)), Ordering::Release);
        self.ids.insert(s.clone(), id);
        self.states.push(s);
        Some(id)
    }

    /// Number of filled δ-memo entries across both levels (raw keys plus
    /// non-sentinel canonical entries).
    fn delta_entries(&self) -> u64 {
        self.raw.len() as u64
            + self
                .delta
                .iter()
                .map(|row| row.iter().filter(|&&e| e != UNKNOWN).count() as u64)
                .sum::<u64>()
    }
}

/// Shared, thread-safe session state: the memo tables behind a read/write
/// lock (reads are the steady state; a write is one δ or signature miss),
/// the lock-free per-id output table, and lock-free hit/miss counters for
/// the bench's hit-rate column.
#[derive(Debug)]
struct SessionState<S> {
    tables: RwLock<Tables<S>>,
    /// `outputs[sid]` is the encoded output of state `sid`, written once
    /// under the write lock at intern time and read lock-free by the
    /// accept/reject scans (the engine calls them once per interned
    /// configuration — taking the read lock there would double the
    /// per-configuration lock traffic). Pre-sized to the whole `u16` id
    /// space (64 KiB), so a slot exists before any id can reach a reader.
    outputs: Box<[AtomicU8]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Lock-free encoding of [`Output`] for the session output table.
const OUT_NEUTRAL: u8 = 0;
const OUT_ACCEPT: u8 = 1;
const OUT_REJECT: u8 = 2;

#[inline]
fn encode_output(o: Output) -> u8 {
    match o {
        Output::Neutral => OUT_NEUTRAL,
        Output::Accept => OUT_ACCEPT,
        Output::Reject => OUT_REJECT,
    }
}

thread_local! {
    /// Per-thread scratch: the configuration unpacked to per-node ids (one
    /// packed extraction per node per call — raw keys and signature keys
    /// alike then read plain array slots), the sorted neighbour list and
    /// the RLE signature key. Reused across every `successors_into` call
    /// on the thread, so steady-state successor generation allocates
    /// nothing.
    static SIG_SCRATCH: RefCell<(Vec<u16>, Vec<u16>, Vec<u32>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Builds the canonical signature key of a node's β-clipped neighbour
/// multiset into `key`: neighbour state ids, sorted, run-length encoded as
/// `(sid << 16) | count` with counts clipped at β.
#[inline]
fn build_sig_key(ids: &[u16], nbrs: &[usize], beta: u32, nbr: &mut Vec<u16>, key: &mut Vec<u32>) {
    nbr.clear();
    for &u in nbrs {
        nbr.push(ids[u]);
    }
    nbr.sort_unstable();
    key.clear();
    for &sid in nbr.iter() {
        match key.last_mut() {
            Some(e) if (*e >> 16) as u16 == sid => {
                let count = (*e & 0xFFFF).min(beta - 1) + 1; // clip at β
                *e = (u32::from(sid) << 16) | count;
            }
            _ => key.push((u32::from(sid) << 16) | 1),
        }
    }
}

/// Packs node `v`'s raw local view — its own state id plus its neighbour
/// ids in adjacency order — into the `u64` key of the raw δ memo. The
/// caller guarantees degree ≤ [`RAW_DEG`]; unused lanes are filled with
/// `0xFFFF` ([`UNKNOWN`], never a real id), so views of different degrees
/// can never collide.
#[inline]
fn raw_key(ids: &[u16], nbrs: &[usize], v: usize) -> u64 {
    let mut k = u64::from(ids[v]);
    let mut shift = 16;
    for &u in nbrs {
        k |= u64::from(ids[u]) << shift;
        shift += 16;
    }
    while shift < 64 {
        k |= u64::from(u16::MAX) << shift;
        shift += 16;
    }
    k
}

/// A [`TransitionSystem`] over [`PackedConfig`]s that replays the
/// exclusive-selection semantics through the session's memo tables. One
/// instance per width attempt; the tables outlive it across restarts.
#[derive(Debug)]
struct KernelSystem<'a, S: State> {
    machine: &'a Machine<S>,
    graph: &'a Graph,
    session: &'a SessionState<S>,
    nodes: usize,
    /// Per-node field width of this attempt (power of two, ≤ 16).
    bits: u32,
    /// Flips when a fresh state id no longer fits `bits`; successor
    /// generation then drains so the doomed exploration finishes fast.
    overflow: AtomicBool,
    /// Flips when the `u16` state-id space is exhausted (the session must
    /// refuse rather than restart).
    exhausted: AtomicBool,
}

impl<S: State> KernelSystem<'_, S> {
    /// Fast path: resolve every node step against the memo tables under
    /// the read lock. Returns the number of δ hits, or `None` on the
    /// first signature or δ miss (the caller retries under the write
    /// lock). On a state-width overflow the overflow flag is set and the
    /// call reports success with an empty buffer — the drain behaviour.
    fn try_successors(
        &self,
        t: &Tables<S>,
        c: &PackedConfig,
        ids: &[u16],
        out: &mut SuccBuf<PackedConfig>,
        nbr: &mut Vec<u16>,
        key: &mut Vec<u32>,
    ) -> Option<u64> {
        let bits = self.bits;
        let beta = self.machine.beta();
        let mut hits = 0u64;
        for v in 0..self.nodes {
            let sid = ids[v];
            let nbrs = self.graph.neighbours(v);
            let nid = if nbrs.len() <= RAW_DEG {
                t.raw.get(raw_key(ids, nbrs, v))?
            } else {
                build_sig_key(ids, nbrs, beta, nbr, key);
                let &sig = t.sigs.get(key.as_slice())?;
                let nid = *t.delta[sig as usize].get(sid as usize)?;
                if nid == UNKNOWN {
                    return None;
                }
                nid
            };
            hits += 1;
            if nid == sid {
                continue; // silent
            }
            if u32::from(nid) >> bits != 0 {
                self.overflow.store(true, Ordering::Relaxed);
                out.clear();
                return Some(hits);
            }
            out.push(c.with_patched(v, nid, bits));
        }
        Some(hits)
    }

    /// Slow path: recompute the call under the write lock, interning
    /// missing signatures and δ entries (each miss reconstructs the real
    /// state and [`Neighbourhood`] and pays one `Machine::step`).
    fn fill_successors(
        &self,
        t: &mut Tables<S>,
        c: &PackedConfig,
        ids: &[u16],
        out: &mut SuccBuf<PackedConfig>,
        nbr: &mut Vec<u16>,
        key: &mut Vec<u32>,
    ) {
        let bits = self.bits;
        let beta = self.machine.beta();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for v in 0..self.nodes {
            let sid = ids[v];
            let nbrs = self.graph.neighbours(v);
            let nid = if nbrs.len() <= RAW_DEG {
                // Raw level: memoize the exact low-degree local view,
                // reconstructing the neighbourhood straight from the
                // neighbour ids on the first sighting.
                let rk = raw_key(ids, nbrs, v);
                match t.raw.get(rk) {
                    Some(nid) => {
                        hits += 1;
                        nid
                    }
                    None => {
                        misses += 1;
                        let s = t.states[sid as usize].clone();
                        let view = Neighbourhood::from_states(
                            nbrs.iter()
                                .map(|&u| t.states[ids[u] as usize].clone())
                                .collect::<Vec<_>>(),
                            beta,
                        );
                        let next = self.machine.step(&s, &view);
                        let Some(nid) = t.intern_state(self.machine, next, &self.session.outputs)
                        else {
                            self.exhausted.store(true, Ordering::Relaxed);
                            out.clear();
                            return;
                        };
                        t.raw.insert(rk, nid);
                        nid
                    }
                }
            } else {
                build_sig_key(ids, nbrs, beta, nbr, key);
                let sig = match t.sigs.get(key.as_slice()) {
                    Some(&sig) => sig,
                    None => {
                        let sig = t.delta.len() as u32;
                        t.sigs.insert(key.as_slice().into(), sig);
                        t.delta.push(vec![UNKNOWN; t.states.len()]);
                        sig
                    }
                };
                if t.delta[sig as usize].len() <= sid as usize {
                    let n = t.states.len().max(sid as usize + 1);
                    t.delta[sig as usize].resize(n, UNKNOWN);
                }
                let mut nid = t.delta[sig as usize][sid as usize];
                if nid == UNKNOWN {
                    misses += 1;
                    // Reconstruct the clip-exact neighbourhood from the
                    // signature and pay the one real δ call for this key.
                    let s = t.states[sid as usize].clone();
                    let view = Neighbourhood::from_counts(
                        key.iter().map(|&e| {
                            (t.states[(e >> 16) as usize].clone(), u64::from(e & 0xFFFF))
                        }),
                        beta,
                    );
                    let next = self.machine.step(&s, &view);
                    match t.intern_state(self.machine, next, &self.session.outputs) {
                        Some(id) => nid = id,
                        None => {
                            self.exhausted.store(true, Ordering::Relaxed);
                            out.clear();
                            return;
                        }
                    }
                    t.delta[sig as usize][sid as usize] = nid;
                } else {
                    hits += 1;
                }
                nid
            };
            if nid == sid {
                continue; // silent
            }
            if u32::from(nid) >> bits != 0 {
                self.overflow.store(true, Ordering::Relaxed);
                out.clear();
                break;
            }
            out.push(c.with_patched(v, nid, bits));
        }
        self.session.hits.fetch_add(hits, Ordering::Relaxed);
        self.session.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Packs the initial configuration, interning the initial states.
    /// `None` when the state-id space is exhausted.
    fn pack_initial(&self) -> Option<PackedConfig> {
        let mut t = self.session.tables.write().expect("kernel tables poisoned");
        let mut ids = Vec::with_capacity(self.nodes);
        for v in self.graph.nodes() {
            let s = self.machine.initial(self.graph.label(v));
            ids.push(t.intern_state(self.machine, s, &self.session.outputs)?);
        }
        if ids.iter().any(|&id| u32::from(id) >> self.bits != 0) {
            self.overflow.store(true, Ordering::Relaxed);
        }
        Some(PackedConfig::pack(ids, self.nodes, self.bits))
    }
}

impl<S: State> TransitionSystem for KernelSystem<'_, S> {
    type C = PackedConfig;

    fn initial_config(&self) -> PackedConfig {
        self.pack_initial()
            .expect("state-id space exhausted while packing the initial configuration")
    }

    fn successors(&self, c: &PackedConfig) -> Vec<PackedConfig> {
        let mut out = SuccBuf::new();
        self.successors_into(c, &mut out);
        out.into_vec()
    }

    fn successors_into(&self, c: &PackedConfig, out: &mut SuccBuf<PackedConfig>) {
        if self.overflow.load(Ordering::Relaxed) || self.exhausted.load(Ordering::Relaxed) {
            return; // drain: the attempt's result will be discarded
        }
        SIG_SCRATCH.with(|scratch| {
            let (ids, nbr, key) = &mut *scratch.borrow_mut();
            ids.clear();
            c.unpack_into(self.nodes, self.bits, ids);
            let done = {
                let t = self.session.tables.read().expect("kernel tables poisoned");
                self.try_successors(&t, c, ids, out, nbr, key)
            };
            match done {
                Some(hits) => {
                    self.session.hits.fetch_add(hits, Ordering::Relaxed);
                }
                None => {
                    out.clear();
                    let mut t = self.session.tables.write().expect("kernel tables poisoned");
                    self.fill_successors(&mut t, c, ids, out, nbr, key);
                }
            }
        });
    }

    fn is_accepting(&self, c: &PackedConfig) -> bool {
        let o = &self.session.outputs;
        (0..self.nodes)
            .all(|v| o[c.get(v, self.bits) as usize].load(Ordering::Acquire) == OUT_ACCEPT)
    }

    fn is_rejecting(&self, c: &PackedConfig) -> bool {
        let o = &self.session.outputs;
        (0..self.nodes)
            .all(|v| o[c.get(v, self.bits) as usize].load(Ordering::Acquire) == OUT_REJECT)
    }
}

/// Table sizes and counters of a finished kernel session — the numbers
/// behind BENCH_explore.json's `kernel` section.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Distinct machine states interned over the session.
    pub states: usize,
    /// Distinct neighbourhood signatures interned.
    pub sigs: usize,
    /// Filled `(state, signature)` δ-table entries — each one real
    /// `Machine::step` call, ever.
    pub delta_entries: u64,
    /// Node steps resolved by a memoized δ entry.
    pub delta_hits: u64,
    /// Node steps that computed (and memoized) a fresh δ entry.
    pub delta_misses: u64,
    /// Final per-node field width in bits (power of two).
    pub bits: u32,
    /// Width-overflow restarts the session performed (0 almost always).
    pub restarts: u32,
    /// Bytes held by the packed configuration arena (inline words plus
    /// heap spill-over of every interned row).
    pub arena_bytes: u64,
}

impl KernelStats {
    /// δ hits as a fraction of all node-step lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.delta_hits + self.delta_misses;
        if total == 0 {
            return 0.0;
        }
        self.delta_hits as f64 / total as f64
    }
}

/// A finished kernel exploration: the packed configuration graph plus the
/// session tables needed to unpack rows back into [`Config`]s.
#[derive(Debug)]
pub struct KernelExploration<S: State> {
    exploration: Exploration<PackedConfig>,
    session: SessionState<S>,
    nodes: usize,
    bits: u32,
    restarts: u32,
}

impl<S: State> KernelExploration<S> {
    /// The verdict under pseudo-stochastic fairness.
    pub fn verdict(&self) -> Verdict {
        self.exploration.verdict()
    }

    /// Number of reachable configurations (identical to the generic
    /// engine's count: packing is injective).
    pub fn len(&self) -> usize {
        self.exploration.len()
    }

    /// Whether the exploration is empty (never: the start is present).
    pub fn is_empty(&self) -> bool {
        self.exploration.is_empty()
    }

    /// Whether successor storage spilled to disk.
    pub fn was_spilled(&self) -> bool {
        self.exploration.was_spilled()
    }

    /// The underlying packed exploration (edges, fixpoints, level stats).
    pub fn exploration(&self) -> &Exploration<PackedConfig> {
        &self.exploration
    }

    /// Unpacks configuration `i` back into per-node states.
    pub fn config(&self, i: usize) -> Config<S> {
        let t = self.session.tables.read().expect("kernel tables poisoned");
        let packed = &self.exploration.configs()[i];
        Config::from_states(
            (0..self.nodes)
                .map(|v| t.states[packed.get(v, self.bits) as usize].clone())
                .collect(),
        )
    }

    /// Unpacks every configuration, dense by id — the differential suites
    /// compare this against the generic engine's `configs()`.
    pub fn configs_unpacked(&self) -> Vec<Config<S>> {
        (0..self.len()).map(|i| self.config(i)).collect()
    }

    /// Session statistics: table sizes, δ hit counters, arena footprint.
    pub fn stats(&self) -> KernelStats {
        let t = self.session.tables.read().expect("kernel tables poisoned");
        let arena_bytes = self
            .exploration
            .configs()
            .iter()
            .map(|c| (std::mem::size_of::<PackedConfig>() + c.heap_bytes()) as u64)
            .sum();
        KernelStats {
            states: t.states.len(),
            sigs: t.sigs.len(),
            delta_entries: t.delta_entries(),
            delta_hits: self.session.hits.load(Ordering::Relaxed),
            delta_misses: self.session.misses.load(Ordering::Relaxed),
            bits: self.bits,
            restarts: self.restarts,
            arena_bytes,
        }
    }
}

/// The smallest supported width covering state ids `0..states`.
fn width_for(states: usize) -> u32 {
    *PackedConfig::WIDTHS
        .iter()
        .find(|&&bits| states <= 1usize << bits)
        .unwrap_or(&16)
}

/// The starting width of a session: wide enough for the states seen so
/// far, but never narrower than free width. A doomed attempt costs a
/// partial re-exploration, so width is only worth rationing when it
/// costs memory: any width whose row still fits the two inline words is
/// free (no heap, same hash cost), so small graphs start at the widest
/// such width and never restart. Rows that need the heap anyway start at
/// no less than 4 bits — 16 states covers every machine in this
/// workspace's test fleet, and a restart doubles from there if not.
fn start_width(states: usize, nodes: usize) -> u32 {
    let inline_max = PackedConfig::WIDTHS
        .iter()
        .rev()
        .find(|&&bits| PackedConfig::words_for(nodes, bits) <= 2)
        .copied()
        .unwrap_or(1);
    let floor = if inline_max > 1 { inline_max } else { 4 };
    width_for(states.max(2)).max(floor)
}

/// Explores the exclusive-selection configuration space of `machine` on
/// `graph` through the dense successor kernel. Observationally identical
/// to `Exploration::explore_with(&ExclusiveSystem::new(machine, graph),
/// …)` — same interned-id order (after unpacking), same edges, same
/// verdict, same explored count — but with memoized δ steps and packed,
/// mostly allocation-free successor construction.
///
/// # Errors
///
/// [`ExploreError::TooLarge`] when `options.limit` is exhausted (the
/// kernel interns exactly as many configurations as the generic engine
/// would), and [`ExploreError::Unsupported`] in the pathological case of
/// more than 65 534 distinct reachable states (the `u16` id space; the
/// decider falls back to the generic engine on this error).
pub fn explore_kernel<S: State>(
    machine: &Machine<S>,
    graph: &Graph,
    options: ExploreOptions,
) -> Result<KernelExploration<S>, ExploreError> {
    let session = SessionState {
        tables: RwLock::new(Tables::new()),
        outputs: std::iter::repeat_with(|| AtomicU8::new(OUT_NEUTRAL))
            .take(1 << 16)
            .collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    };
    let nodes = graph.node_count();
    let mut restarts = 0u32;
    loop {
        let states = session
            .tables
            .read()
            .expect("kernel tables poisoned")
            .states
            .len();
        let bits = start_width(states, nodes);
        let system = KernelSystem {
            machine,
            graph,
            session: &session,
            nodes,
            bits,
            overflow: AtomicBool::new(false),
            exhausted: AtomicBool::new(false),
        };
        let start = system
            .pack_initial()
            .ok_or_else(|| ExploreError::Unsupported {
                reason: format!(
                    "the dense kernel interns states to u16 ids; this machine \
                 exceeded {MAX_STATES} distinct reachable states"
                ),
            })?;
        let exploration = Exploration::explore_with(&system, start, options)?;
        if system.exhausted.load(Ordering::Relaxed) {
            return Err(ExploreError::Unsupported {
                reason: format!(
                    "the dense kernel interns states to u16 ids; this machine \
                     exceeded {MAX_STATES} distinct reachable states"
                ),
            });
        }
        if system.overflow.load(Ordering::Relaxed) {
            // A fresh state overflowed the field width: discard the drained
            // attempt and re-explore wider. The tables persist, so the
            // re-run replays memoized δ lookups.
            restarts += 1;
            debug_assert!(restarts <= PackedConfig::WIDTHS.len() as u32);
            continue;
        }
        return Ok(KernelExploration {
            exploration,
            session,
            nodes,
            bits,
            restarts,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExclusiveSystem, Machine};
    use wam_graph::{generators, LabelCount};

    fn flood() -> Machine<bool> {
        Machine::new(
            1,
            |l| l.0 == 1,
            |&s, n| s || n.exists(|&t| t),
            |&s| {
                if s {
                    Output::Accept
                } else {
                    Output::Reject
                }
            },
        )
    }

    /// A counter machine with a deliberately wide state space: label-1
    /// nodes walk `1..=cap` in steps of 1 while label-0 nodes stay frozen
    /// at 0 — `cap + 1` reachable states over a narrow configuration
    /// space, forcing the kernel through width restarts on large caps.
    fn ladder(cap: u32) -> Machine<u32> {
        Machine::new(
            2,
            |l| u32::from(l.0),
            move |&s, _| if s == 0 { 0 } else { (s + 1).min(cap) },
            move |&s| {
                if s >= cap {
                    Output::Accept
                } else {
                    Output::Neutral
                }
            },
        )
    }

    #[test]
    fn kernel_matches_generic_engine_on_flood() {
        let m = flood();
        for counts in [vec![3u64, 1], vec![4, 0], vec![2, 2]] {
            let g = generators::labelled_cycle(&LabelCount::from_vec(counts.clone()));
            let sys = ExclusiveSystem::new(&m, &g);
            let generic = Exploration::explore(&sys, 100_000).unwrap();
            let kernel = explore_kernel(&m, &g, ExploreOptions::with_limit(100_000)).unwrap();
            assert_eq!(kernel.len(), generic.len(), "{counts:?}");
            assert_eq!(kernel.verdict(), generic.verdict(), "{counts:?}");
            assert_eq!(kernel.configs_unpacked(), generic.configs(), "{counts:?}");
            for i in 0..generic.len() {
                assert_eq!(
                    &*kernel.exploration().successors(i),
                    &*generic.successors(i),
                    "row {i} of {counts:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_restarts_on_width_overflow() {
        // 41 reachable states on a 140-node line: the row needs the heap,
        // so the session starts at the 4-bit floor and must widen to
        // 8 bits when state id 16 appears mid-exploration.
        let m = ladder(40);
        let g = generators::labelled_line(&LabelCount::from_vec(vec![139, 1]));
        let sys = ExclusiveSystem::new(&m, &g);
        let generic = Exploration::explore(&sys, 1_000_000).unwrap();
        let kernel = explore_kernel(&m, &g, ExploreOptions::with_limit(1_000_000)).unwrap();
        let stats = kernel.stats();
        assert!(stats.restarts >= 1, "expected a width restart: {stats:?}");
        assert_eq!(stats.bits, 8);
        assert_eq!(stats.states, 41);
        assert_eq!(kernel.len(), generic.len());
        assert_eq!(kernel.configs_unpacked(), generic.configs());
        assert_eq!(kernel.verdict(), generic.verdict());
    }

    #[test]
    fn kernel_stats_account_for_memoization() {
        let m = flood();
        // A star exercises both memo levels: the hub (degree 7) goes
        // through canonical signatures, the leaves (degree 1) through the
        // raw low-degree memo.
        let g = generators::labelled_star(&LabelCount::from_vec(vec![6, 2]));
        let kernel = explore_kernel(&m, &g, ExploreOptions::with_limit(100_000)).unwrap();
        let stats = kernel.stats();
        assert_eq!(stats.states, 2);
        assert!(stats.sigs >= 1 && stats.sigs <= 8, "{stats:?}");
        // Every filled entry was exactly one real δ call.
        assert_eq!(stats.delta_entries, stats.delta_misses);
        // The memo pays for itself many times over even on this tiny space.
        assert!(stats.delta_hits > stats.delta_misses * 4, "{stats:?}");
        assert!(stats.hit_rate() > 0.8, "{stats:?}");
        assert!(stats.arena_bytes > 0);
        // Inline storage makes width free: 8 nodes at 16 bits still fit
        // two inline words, so the session starts (and stays) at 16 and
        // the arena never touches the heap.
        assert_eq!(stats.bits, 16);
        assert_eq!(
            stats.arena_bytes,
            (kernel.len() * std::mem::size_of::<PackedConfig>()) as u64
        );
    }

    #[test]
    fn kernel_respects_limit_like_the_generic_engine() {
        let m = flood();
        let g = generators::labelled_line(&LabelCount::from_vec(vec![5, 1]));
        let err = explore_kernel(&m, &g, ExploreOptions::with_limit(2)).unwrap_err();
        assert!(
            matches!(err, ExploreError::TooLarge { limit: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn kernel_parallel_paths_match_sequential() {
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![5, 2]));
        let seq = explore_kernel(&m, &g, ExploreOptions::with_limit(1_000_000).threads(1)).unwrap();
        let par = explore_kernel(
            &m,
            &g,
            ExploreOptions::with_limit(1_000_000)
                .threads(4)
                .frontier_threshold(1),
        )
        .unwrap();
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.verdict(), par.verdict());
        assert_eq!(seq.configs_unpacked(), par.configs_unpacked());
    }
}
