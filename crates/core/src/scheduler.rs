//! Schedulers: selection regimes, fairness, and concrete drivers.
//!
//! A scheduler `Σ = (s, f)` consists of a *selection constraint* (which node
//! sets may move at each step) and a *fairness constraint*. The paper's
//! regimes are [`SelectionRegime::Synchronous`] (all nodes),
//! [`SelectionRegime::Exclusive`] (exactly one node) and
//! [`SelectionRegime::Liberal`] (any nonempty set). Fairness is either
//! *adversarial* (every node selected infinitely often) or
//! *pseudo-stochastic* (every finite selection sequence occurs infinitely
//! often).
//!
//! Pseudo-stochastic schedules are infinitary objects; exact verdicts under
//! them are computed by [`decide`](crate::decide)
//! on the configuration graph. The drivers here produce concrete finite
//! schedules: seeded random schedules (the standard statistical surrogate for
//! pseudo-stochastic fairness) and deterministic fair schedules (round-robin,
//! synchronous) that witness adversarial fairness.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wam_graph::{Graph, NodeId};

/// A selection: the set of nodes activated at one step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Selection {
    nodes: Vec<NodeId>,
}

impl Selection {
    /// A selection of exactly one node.
    pub fn exclusive(v: NodeId) -> Self {
        Selection { nodes: vec![v] }
    }

    /// The synchronous selection of all nodes of `g`.
    pub fn all(g: &Graph) -> Self {
        Selection {
            nodes: g.nodes().collect(),
        }
    }

    /// An arbitrary (liberal) selection.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty (schedules select at least one node).
    pub fn from_nodes(mut nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "selections must be nonempty");
        nodes.sort_unstable();
        nodes.dedup();
        Selection { nodes }
    }

    /// The selected nodes, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of selected nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the selection is empty (never, for constructed selections).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `v` is selected.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }
}

/// The three selection regimes of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionRegime {
    /// Every step selects all nodes.
    Synchronous,
    /// Every step selects exactly one node.
    Exclusive,
    /// Every step selects an arbitrary nonempty set of nodes.
    Liberal,
}

/// A source of selections driving a run.
///
/// Implementations must be *fair*: every node is selected infinitely often in
/// the limit. All drivers in this module are.
pub trait Scheduler {
    /// Produces the selection for step `t`.
    fn next_selection(&mut self, graph: &Graph, t: usize) -> Selection;

    /// The regime this scheduler's selections conform to.
    fn regime(&self) -> SelectionRegime;
}

/// The synchronous scheduler: all nodes, every step. Under the synchronous
/// regime adversarial and pseudo-stochastic fairness coincide (there is only
/// one permitted schedule).
#[derive(Debug, Clone, Copy, Default)]
pub struct SynchronousScheduler;

impl Scheduler for SynchronousScheduler {
    fn next_selection(&mut self, graph: &Graph, _t: usize) -> Selection {
        Selection::all(graph)
    }

    fn regime(&self) -> SelectionRegime {
        SelectionRegime::Synchronous
    }
}

/// Deterministic round-robin exclusive scheduler: node `t mod |V|` at step
/// `t`. This is a fair adversarial schedule; its run is ultimately periodic,
/// which the exact deciders exploit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler;

impl Scheduler for RoundRobinScheduler {
    fn next_selection(&mut self, graph: &Graph, t: usize) -> Selection {
        Selection::exclusive(t % graph.node_count())
    }

    fn regime(&self) -> SelectionRegime {
        SelectionRegime::Exclusive
    }
}

/// Seeded uniform random scheduler, available in all three regimes.
///
/// Exclusive: a uniformly random node per step. Liberal: every node included
/// independently with probability ½ (re-drawn if empty). Synchronous:
/// degenerates to all nodes. Random schedules are fair with probability 1 and
/// are the standard statistical surrogate for pseudo-stochastic fairness.
#[derive(Debug)]
pub struct RandomScheduler {
    regime: SelectionRegime,
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with the given regime and seed.
    pub fn new(regime: SelectionRegime, seed: u64) -> Self {
        RandomScheduler {
            regime,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Exclusive-regime convenience constructor.
    pub fn exclusive(seed: u64) -> Self {
        Self::new(SelectionRegime::Exclusive, seed)
    }
}

impl Scheduler for RandomScheduler {
    fn next_selection(&mut self, graph: &Graph, _t: usize) -> Selection {
        let n = graph.node_count();
        match self.regime {
            SelectionRegime::Synchronous => Selection::all(graph),
            SelectionRegime::Exclusive => Selection::exclusive(self.rng.random_range(0..n)),
            SelectionRegime::Liberal => loop {
                let nodes: Vec<NodeId> = (0..n).filter(|_| self.rng.random_bool(0.5)).collect();
                if !nodes.is_empty() {
                    return Selection::from_nodes(nodes);
                }
            },
        }
    }

    fn regime(&self) -> SelectionRegime {
        self.regime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wam_graph::generators;

    #[test]
    fn selection_constructors() {
        let g = generators::cycle(4);
        assert_eq!(Selection::exclusive(2).nodes(), &[2]);
        assert_eq!(Selection::all(&g).len(), 4);
        let s = Selection::from_nodes(vec![3, 1, 3]);
        assert_eq!(s.nodes(), &[1, 3]);
        assert!(s.contains(3));
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_selection_rejected() {
        Selection::from_nodes(vec![]);
    }

    #[test]
    fn round_robin_is_fair_over_a_period() {
        let g = generators::cycle(5);
        let mut s = RoundRobinScheduler;
        let mut hit = [false; 5];
        for t in 0..5 {
            let sel = s.next_selection(&g, t);
            assert_eq!(sel.len(), 1);
            hit[sel.nodes()[0]] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn random_exclusive_selects_single_nodes_reproducibly() {
        let g = generators::cycle(6);
        let mut s1 = RandomScheduler::exclusive(7);
        let mut s2 = RandomScheduler::exclusive(7);
        for t in 0..20 {
            let a = s1.next_selection(&g, t);
            let b = s2.next_selection(&g, t);
            assert_eq!(a, b);
            assert_eq!(a.len(), 1);
        }
    }

    #[test]
    fn random_liberal_nonempty() {
        let g = generators::cycle(4);
        let mut s = RandomScheduler::new(SelectionRegime::Liberal, 1);
        for t in 0..50 {
            assert!(!s.next_selection(&g, t).is_empty());
        }
    }

    #[test]
    fn random_exclusive_hits_every_node_eventually() {
        let g = generators::cycle(5);
        let mut s = RandomScheduler::exclusive(3);
        let mut hit = [false; 5];
        for t in 0..200 {
            hit[s.next_selection(&g, t).nodes()[0]] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn synchronous_selects_all() {
        let g = generators::cycle(3);
        let mut s = SynchronousScheduler;
        assert_eq!(s.next_selection(&g, 0), Selection::all(&g));
        assert_eq!(s.regime(), SelectionRegime::Synchronous);
    }
}
