//! Differential tests for orbit-quotient exploration: on random machines /
//! parameterised protocols and random graphs, exploring the quotient of
//! the configuration space under `Aut(G)` must yield the same [`Verdict`]
//! as exploring the full space, across **all six model families**
//! (exclusive, liberal, weak broadcast, weak absence detection,
//! rendez-vous / population, strong broadcast). This is the empirical half
//! of the soundness argument in `wam-core::symmetry` — the debug
//! equivariance check is re-run explicitly here on every sampled system.
//!
//! A separate regression test pins the quotient against an independent
//! implementation of the same idea: `wam-analysis::stars` collapses star
//! configurations by leaf permutation symbolically (centre state + leaf
//! multiset), and the orbit quotient of the node-explicit star must
//! reproduce its configuration count *exactly*.

use proptest::prelude::*;
use weak_async_models::analysis::StarSystem;
use weak_async_models::core::{
    Backend, ExclusiveSystem, Exploration, ExploreOptions, LiberalSystem, Machine, NodeSymmetric,
    Output, PermuteNodes, QuotientSystem, Schedule, TransitionSystem,
};
use weak_async_models::extensions::{
    threshold_protocol, AbsenceMachine, AbsenceSystem, BroadcastSystem, GraphPopulationProtocol,
    MajorityState, PopulationSystem, StrongBroadcastSystem,
};
use weak_async_models::graph::{automorphism_group, generators, Graph, Label, LabelCount};
use weak_async_models::protocols::threshold_machine;

const STATES: u8 = 3;

/// A table-driven machine over states `0..STATES` with counting bound 1
/// (as in `explore_differential.rs`): every table is a well-formed
/// machine, so sampling tables samples machines.
fn table_machine(init: [u8; 2], table: Vec<u8>, outs: [u8; STATES as usize]) -> Machine<u8> {
    assert_eq!(table.len(), (STATES as usize) << STATES);
    Machine::new(
        1,
        move |l: Label| init[l.0 as usize % 2] % STATES,
        move |&s: &u8, n| {
            let mask: usize = (0..STATES)
                .filter(|q| n.exists(|&t| t == *q))
                .map(|q| 1usize << q)
                .sum();
            table[((s as usize) << STATES) | mask] % STATES
        },
        move |&s| match outs[s as usize % STATES as usize] % 3 {
            0 => Output::Reject,
            1 => Output::Accept,
            _ => Output::Neutral,
        },
    )
}

fn random_graph(shape: u8, a: u64, b: u64, seed: u64) -> Graph {
    let c = LabelCount::from_vec(vec![a, b]);
    match shape % 3 {
        0 => generators::labelled_cycle(&c),
        1 => generators::labelled_line(&c),
        _ => generators::random_degree_bounded(&c, 3, 2, seed),
    }
}

/// A minimal absence-detection machine: initiators are the label-0 agents,
/// the detection step inspects the observed support for a label-1 agent.
/// Even states accept, odd states reject.
fn absence_detector() -> AbsenceMachine<u8> {
    let machine = Machine::new(
        1,
        |l: Label| if l.0 == 0 { 0u8 } else { 1 },
        |&s, _| s,
        |&s| {
            if s % 2 == 0 {
                Output::Accept
            } else {
                Output::Reject
            }
        },
    );
    AbsenceMachine::new(
        machine,
        |&s| s == 0,
        |_, supp| if supp.contains(&1) { 3 } else { 2 },
    )
}

/// Explores `sys` fully and through the orbit quotient, asserts the
/// equivariance contract and verdict equality, and returns
/// `(full, quotient)` configuration counts.
fn assert_quotient_agrees<T>(sys: &T, limit: usize) -> (usize, usize)
where
    T: NodeSymmetric + Sync,
    T::C: PermuteNodes + Send + Sync,
{
    let full = Exploration::explore_from(sys, sys.initial_config(), limit).expect("full space");
    let group = automorphism_group(sys.symmetry_graph(), 10_000);
    assert!(group.is_complete(), "test graphs are small");
    let quotient = QuotientSystem::new(sys, group);
    assert!(
        quotient.check_equivariance(&sys.initial_config()),
        "successors must commute with Aut(G)"
    );
    let reduced =
        Exploration::explore_from(&quotient, quotient.initial_config(), limit).expect("quotient");
    assert!(
        reduced.len() <= full.len(),
        "the quotient can never be larger: {} > {}",
        reduced.len(),
        full.len()
    );
    assert_eq!(
        reduced.verdict(),
        full.verdict(),
        "orbit reduction changed the verdict"
    );
    (full.len(), reduced.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Exclusive and liberal selection: random table machines on random
    /// graphs. Also cross-checks the backend resolution of
    /// [`weak_async_models::core::decide`]: `Auto`, `Explicit` and
    /// `Quotient` must return the same verdict.
    #[test]
    fn quotient_preserves_verdicts_exclusive_and_liberal(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..3,
        a in 1u64..4,
        b in 1u64..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);

        let ex = ExclusiveSystem::new(&m, &g);
        let (full, reduced) = assert_quotient_agrees(&ex, 500_000);
        let expected = Exploration::explore(&ex, 500_000).unwrap().verdict();
        for backend in [Backend::Auto, Backend::Explicit, Backend::Quotient] {
            let (v, _) = weak_async_models::core::decide(
                &m,
                &g,
                Schedule::PseudoStochastic,
                backend,
                ExploreOptions::with_limit(500_000),
            )
            .unwrap();
            prop_assert_eq!(v, expected);
        }
        prop_assert!(reduced <= full);

        let li = LiberalSystem::new(&m, &g);
        assert_quotient_agrees(&li, 500_000);
    }

    /// The four extended families: weak broadcasts, weak absence
    /// detection, rendez-vous population protocols and strong broadcasts,
    /// over parameterised protocols on random graphs.
    #[test]
    fn quotient_preserves_verdicts_extended_families(
        k in 1u8..3,
        shape in 0u8..3,
        a in 1u64..4,
        b in 1u64..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let g = random_graph(shape, a, b, seed);

        let bm = threshold_machine(2, 0, k);
        assert_quotient_agrees(&BroadcastSystem::new(&bm, &g), 500_000);

        let am = absence_detector();
        assert_quotient_agrees(&AbsenceSystem::new(&am, &g), 500_000);

        let pp = GraphPopulationProtocol::<MajorityState>::majority();
        assert_quotient_agrees(&PopulationSystem::new(&pp, &g), 500_000);

        let sb = threshold_protocol(u32::from(k));
        assert_quotient_agrees(&StrongBroadcastSystem::new(&sb, &g), 500_000);
    }
}

/// The orbit quotient of a node-explicit star must reproduce the
/// symbolic star algebra of `wam-analysis::stars` (centre state + leaf
/// multiset) *exactly*: same configuration count, same verdict.
#[test]
fn star_quotient_reproduces_stars_counts() {
    // "Some node carries label x1", by flag flooding.
    let m = Machine::new(
        1,
        |l: Label| l.0 == 1,
        |&s: &bool, n| s || n.exists(|&t| t),
        |&s| if s { Output::Accept } else { Output::Reject },
    );
    for (plain_leaves, flagged) in [(4u64, 1u64), (5, 1), (3, 2)] {
        // Node 0 is the centre and takes the first label (label 0).
        let g = generators::labelled_star(&LabelCount::from_vec(vec![plain_leaves + 1, flagged]));
        let sys = ExclusiveSystem::new(&m, &g);
        let leaves = plain_leaves + flagged;
        let group = automorphism_group(&g, 10_000);
        assert_eq!(
            group.order() as u64,
            (1..=leaves).product::<u64>(),
            "Aut of a star is the symmetric group on its leaves"
        );
        let q = QuotientSystem::new(&sys, group);
        let reduced = Exploration::explore_from(&q, q.initial_config(), 100_000).unwrap();

        let star_sys = StarSystem::new(
            &m,
            Label(0),
            vec![(Label(0), plain_leaves), (Label(1), flagged)],
        );
        let symbolic = Exploration::explore(&star_sys, 100_000).unwrap();

        assert_eq!(
            reduced.len(),
            symbolic.len(),
            "orbit quotient and star algebra must agree on ({plain_leaves}, {flagged})"
        );
        assert_eq!(reduced.verdict(), symbolic.verdict());

        let full = Exploration::explore(&sys, 100_000).unwrap();
        assert!(reduced.len() < full.len(), "reduction must actually bite");
    }
}
