//! Differential tests for the dense successor kernel: on random machines
//! and random graphs, the kernel exploration (interned `u16` states,
//! memoized δ-tables, packed configuration rows) must be observationally
//! *identical* to the generic engine over `ExclusiveSystem` — same dense
//! id order (after unpacking), same CSR edges, same verdicts, same
//! explored counts — and the `successors_into` buffer API of every model
//! family must emit exactly what its `successors` returns, in order.

use proptest::prelude::*;
use std::sync::Arc;
use weak_async_models::core::{
    decide, explore_kernel, Backend, ExclusiveSystem, Exploration, ExploreOptions, LiberalSystem,
    Machine, Output, Schedule, SuccBuf, Symmetry, TransitionSystem,
};
use weak_async_models::extensions::{
    threshold_protocol, AbsenceMachine, AbsenceSystem, BroadcastMachine, BroadcastSystem,
    GraphPopulationProtocol, MajorityState, PopulationSystem, ResponseFn, StrongBroadcastSystem,
};
use weak_async_models::graph::{generators, Graph, Label, LabelCount};

const STATES: u8 = 3;

/// A table-driven machine over states `0..STATES` with counting bound 1:
/// δ reads only the presence bitmask of neighbouring states, so every
/// table is a well-formed machine and sampling tables samples machines.
fn table_machine(init: [u8; 2], table: Vec<u8>, outs: [u8; STATES as usize]) -> Machine<u8> {
    assert_eq!(table.len(), (STATES as usize) << STATES);
    Machine::new(
        1,
        move |l: Label| init[l.0 as usize % 2] % STATES,
        move |&s: &u8, n| {
            let mask: usize = (0..STATES)
                .filter(|q| n.exists(|&t| t == *q))
                .map(|q| 1usize << q)
                .sum();
            table[((s as usize) << STATES) | mask] % STATES
        },
        move |&s| match outs[s as usize % STATES as usize] % 3 {
            0 => Output::Reject,
            1 => Output::Accept,
            _ => Output::Neutral,
        },
    )
}

/// A counting variant (β = 2): δ reads the base-3 digit vector of clipped
/// neighbour counts, exercising the kernel's signature keys beyond
/// presence bits.
fn counting_machine(init: [u8; 2], table: Vec<u8>, outs: [u8; STATES as usize]) -> Machine<u8> {
    assert_eq!(table.len(), (STATES as usize) * 27);
    Machine::new(
        2,
        move |l: Label| init[l.0 as usize % 2] % STATES,
        move |&s: &u8, n| {
            let idx: usize = (0..STATES)
                .map(|q| (n.count(&q) as usize) * 3usize.pow(u32::from(q)))
                .sum();
            table[(s as usize) * 27 + idx] % STATES
        },
        move |&s| match outs[s as usize % STATES as usize] % 3 {
            0 => Output::Reject,
            1 => Output::Accept,
            _ => Output::Neutral,
        },
    )
}

fn random_graph(shape: u8, a: u64, b: u64, seed: u64) -> Graph {
    let c = LabelCount::from_vec(vec![a, b]);
    match shape % 4 {
        0 => generators::labelled_cycle(&c),
        1 => generators::labelled_line(&c),
        // Stars drive the hub past the kernel's raw-memo degree bound,
        // covering the canonical signature path.
        2 => generators::labelled_star(&c),
        _ => generators::random_degree_bounded(&c, 3, 2, seed),
    }
}

/// Full observational-equality check: kernel exploration vs the generic
/// engine on `ExclusiveSystem`, plus `decide`'s explicit backend (which
/// routes through the kernel) vs the generic engine's counts.
fn assert_kernel_matches_naive(m: &Machine<u8>, g: &Graph) {
    let sys = ExclusiveSystem::new(m, g);
    let naive = Exploration::explore(&sys, 200_000).expect("naive exploration");
    let kernel = explore_kernel(m, g, ExploreOptions::with_limit(200_000)).expect("kernel");

    assert_eq!(kernel.len(), naive.len(), "explored counts differ");
    // Identical interned id order: unpacked kernel config i == naive config i.
    assert_eq!(kernel.configs_unpacked(), naive.configs());
    for i in 0..naive.len() {
        assert_eq!(
            &*kernel.exploration().successors(i),
            &*naive.successors(i),
            "successor row {i} differs"
        );
        assert_eq!(kernel.exploration().is_accepting(i), naive.is_accepting(i));
        assert_eq!(kernel.exploration().is_rejecting(i), naive.is_rejecting(i));
    }
    assert_eq!(kernel.verdict(), naive.verdict());

    // The decide() explicit backend rides the kernel: same verdict, same
    // DecisionStats.explored as the generic engine's interned count.
    let (verdict, stats) = decide(
        m,
        g,
        Schedule::PseudoStochastic,
        Backend::Explicit,
        ExploreOptions::with_limit(200_000),
    )
    .expect("decide explicit");
    assert_eq!(verdict, naive.verdict());
    assert_eq!(stats.explored, naive.len());
}

/// Asserts `successors_into` emits exactly `successors`, in order, for
/// every configuration reachable in `sys` (the buffer API is part of the
/// observable contract — ids are assigned in arrival order).
fn assert_buffer_api_matches<T: TransitionSystem + Sync>(sys: &T, limit: usize)
where
    T::C: Send + Sync,
{
    let e = Exploration::explore(sys, limit).expect("exploration");
    let mut buf: SuccBuf<T::C> = SuccBuf::new();
    for c in e.configs() {
        buf.clear();
        sys.successors_into(c, &mut buf);
        assert_eq!(buf.as_slice(), &sys.successors(c)[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Kernel ≡ naive on random non-counting machines × random graphs.
    #[test]
    fn kernel_matches_naive_noncounting(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..4,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        assert_kernel_matches_naive(&m, &g);
    }

    /// Kernel ≡ naive on random counting machines (β = 2), whose signature
    /// keys carry genuine clipped counts rather than presence bits.
    #[test]
    fn kernel_matches_naive_counting(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) * 27..(STATES as usize) * 27 + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..4,
        a in 1u64..4,
        b in 1u64..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = counting_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        assert_kernel_matches_naive(&m, &g);
    }

    /// The exclusive and liberal families' buffer API matches their
    /// Vec-returning enumeration on random machines × random graphs.
    #[test]
    fn buffer_api_matches_core_families(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..4,
        a in 1u64..4,
        b in 1u64..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        assert_buffer_api_matches(&ExclusiveSystem::new(&m, &g), 50_000);
        assert_buffer_api_matches(&LiberalSystem::new(&m, &g), 50_000);
    }
}

/// The Lemma C.5 threshold broadcast machine `x₀ ≥ k` (same construction
/// as the unit tests in `wam-extensions`).
fn broadcast_threshold(k: u32) -> BroadcastMachine<u32> {
    let machine = Machine::new(
        1,
        move |l: Label| if l.0 == 0 { 1 } else { 0 },
        |&s: &u32, _| s,
        move |&s| {
            if s == k {
                Output::Accept
            } else {
                Output::Reject
            }
        },
    );
    BroadcastMachine::new(
        machine,
        move |&s| s >= 1,
        move |&s| {
            if s == k {
                (k, Arc::new(move |_: &u32| k) as ResponseFn<u32>)
            } else {
                (
                    s,
                    Arc::new(move |&r: &u32| if r == s && r < k { r + 1 } else { r })
                        as ResponseFn<u32>,
                )
            }
        },
    )
}

/// A one-shot absence detector: `A`-agents initiate once and accept iff no
/// `B` appears in their observed support.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum D {
    A,
    B,
    Acc,
    Rej,
}

fn absence_detector() -> AbsenceMachine<D> {
    let machine = Machine::new(
        1,
        |l: Label| if l.0 == 0 { D::A } else { D::B },
        |&s, _| s,
        |&s| match s {
            D::A | D::Acc => Output::Accept,
            D::B | D::Rej => Output::Reject,
        },
    );
    AbsenceMachine::new(
        machine,
        |&s| s == D::A,
        |_, supp| if supp.contains(&D::B) { D::Rej } else { D::Acc },
    )
}

fn small_graphs() -> Vec<Graph> {
    [
        LabelCount::from_vec(vec![3, 1]),
        LabelCount::from_vec(vec![2, 2]),
        LabelCount::from_vec(vec![1, 3]),
    ]
    .iter()
    .flat_map(|c| {
        [
            generators::labelled_cycle(c),
            generators::labelled_line(c),
            generators::labelled_star(c),
        ]
    })
    .collect()
}

/// All four extension families' buffer API matches their Vec-returning
/// enumeration on every reachable configuration of a grid of small
/// instances.
#[test]
fn buffer_api_matches_extension_families() {
    let bm = broadcast_threshold(2);
    let am = absence_detector();
    let pp = GraphPopulationProtocol::<MajorityState>::majority();
    let sb = threshold_protocol(2);
    for g in small_graphs() {
        assert_buffer_api_matches(&BroadcastSystem::new(&bm, &g), 100_000);
        assert_buffer_api_matches(&AbsenceSystem::new(&am, &g), 100_000);
        assert_buffer_api_matches(&PopulationSystem::new(&pp, &g), 100_000);
        assert_buffer_api_matches(&StrongBroadcastSystem::new(&sb, &g), 100_000);
    }
}

/// `Backend::Auto` with `Symmetry::Off` (the other route into the explicit
/// closure) also rides the kernel and stays observationally identical.
#[test]
fn auto_backend_symmetry_off_matches_naive() {
    let m = table_machine([1, 0], vec![1; (STATES as usize) << STATES], [1, 0, 2]);
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![3, 2]));
    let sys = ExclusiveSystem::new(&m, &g);
    let naive = Exploration::explore(&sys, 200_000).unwrap();
    let (verdict, stats) = decide(
        &m,
        &g,
        Schedule::PseudoStochastic,
        Backend::Auto,
        ExploreOptions::with_limit(200_000).symmetry(Symmetry::Off),
    )
    .unwrap();
    assert_eq!(verdict, naive.verdict());
    assert_eq!(stats.explored, naive.len());
}
