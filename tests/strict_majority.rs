//! Strict majority `x₀ > x₁` from the §6.1 machinery: the complement of the
//! homogeneous threshold `x₁ − x₀ ≥ 0`, via output negation — matching the
//! reference predicate exactly on bounded-degree inputs.

use weak_async_models::analysis::Predicate;
use weak_async_models::core::{
    negate, run_machine_until_stable, ExclusiveSystem, Machine, Output, RandomScheduler,
    StabilityOptions,
};
use weak_async_models::extensions::Phased;
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::homogeneous::{detect_of, FlatState};
use weak_async_models::protocols::threshold_stack;
use weak_async_models::sim::{
    critical_change_score, run_adversarial_until_stable, RotatingAdversary,
    SmartStarvationAdversary,
};

#[test]
fn strict_majority_via_negation() {
    let pred = Predicate::majority(); // x₀ > x₁
    for (a, b) in [(2u64, 1u64), (1, 2), (2, 2), (3, 2)] {
        let machine = negate(&threshold_stack(vec![-1, 1], 3).flat());
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, 3, 1, 23);
        let mut sched = RandomScheduler::exclusive(41);
        let r = run_machine_until_stable(
            &machine,
            &g,
            &mut sched,
            StabilityOptions::new(6_000_000, 5_000),
        );
        assert_eq!(
            r.verdict.decided(),
            Some(pred.eval(&c)),
            "strict majority ({a},{b})"
        );
    }
}

/// Whether a flat §6.1 state currently carries a leader tag, through the
/// outer broadcast-compilation phase wrapper.
fn leaderish(f: &FlatState) -> bool {
    let hom = match f {
        Phased::Zero(h) | Phased::One(h, _) | Phased::Two(h, _) => h,
    };
    detect_of(hom).is_leader()
}

#[test]
fn smart_starvation_with_valve_cannot_break_strict_majority() {
    // The anti-leader adversary routes every step it can around the
    // leader-tagged nodes; with the fairness valve open every 3rd step the
    // run is still fair in the limit, so the §6.1 convergence argument must
    // hold and the verdict must match the predicate.
    let pred = Predicate::majority();
    let machine = negate(&threshold_stack(vec![-1, 1], 3).flat());
    for (a, b) in [(2u64, 1u64), (1, 2)] {
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, 3, 1, 23);
        let sys = ExclusiveSystem::new(&machine, &g);
        let mut adv = SmartStarvationAdversary::new(critical_change_score(leaderish), 3);
        let r =
            run_adversarial_until_stable(&sys, &mut adv, StabilityOptions::new(2_000_000, 5_000));
        assert_eq!(
            r.verdict.decided(),
            Some(pred.eval(&c)),
            "starved strict majority ({a},{b})"
        );
    }
}

#[test]
fn relentless_anti_leader_starvation_cannot_stall_the_stack() {
    // Even with the valve removed — an *unfair* schedule that dodges
    // leader-tagged nodes at every single step — the §6.1 stack still
    // converges to the correct verdict. This is the dAf model's design
    // point: the machine must decide under adversarial scheduling, so an
    // anti-leader adversary gains nothing. (Contrast with the next test,
    // where the same adversary stalls a fairness-dependent machine.)
    let pred = Predicate::majority();
    let machine = negate(&threshold_stack(vec![-1, 1], 3).flat());
    for (a, b) in [(2u64, 1u64), (1, 2)] {
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, 3, 1, 23);
        let sys = ExclusiveSystem::new(&machine, &g);
        let mut adv = SmartStarvationAdversary::relentless(critical_change_score(leaderish));
        let r =
            run_adversarial_until_stable(&sys, &mut adv, StabilityOptions::new(2_000_000, 5_000));
        assert_eq!(
            r.verdict.decided(),
            Some(pred.eval(&c)),
            "relentlessly starved strict majority ({a},{b})"
        );
    }
}

/// Flag flooding with a perpetual tick bit: flag spread is the *critical*
/// activity, tick flips are inexhaustible noise the adversary can hide in.
fn ticking_flood() -> Machine<(bool, bool)> {
    Machine::new(
        1,
        |l| (l.0 == 1, false),
        |&(f, t), n| (f || n.exists(|&(g, _): &(bool, bool)| g), !t),
        |&(f, _)| if f { Output::Accept } else { Output::Reject },
    )
}

#[test]
fn relentless_starvation_stalls_where_the_valve_converges() {
    // Here fairness *is* load-bearing: flag spread only happens at nodes
    // adjacent to a carrier, while every node can tick forever. The
    // relentless adversary hides in the tick noise and the flag never
    // spreads; the fairness valve (and the rotating baseline) force the
    // critical steps through and the run accepts.
    let machine = ticking_flood();
    let critical = |s: &(bool, bool)| s.0;
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4u64, 1]));
    let sys = ExclusiveSystem::new(&machine, &g);

    let starved = run_adversarial_until_stable(
        &sys,
        &mut SmartStarvationAdversary::relentless(critical_change_score(critical)),
        StabilityOptions::new(50_000, 500),
    );
    assert_eq!(
        starved.verdict.decided(),
        None,
        "the relentless adversary must stall the flood: {:?}",
        starved.verdict
    );

    let valved = run_adversarial_until_stable(
        &sys,
        &mut SmartStarvationAdversary::new(critical_change_score(critical), 3),
        StabilityOptions::new(50_000, 500),
    );
    assert_eq!(
        valved.verdict.decided(),
        Some(true),
        "valve restores fairness"
    );

    let fair = run_adversarial_until_stable(
        &sys,
        &mut RotatingAdversary,
        StabilityOptions::new(50_000, 500),
    );
    assert_eq!(fair.verdict.decided(), Some(true), "rotating baseline");
}
