//! Strict majority `x₀ > x₁` from the §6.1 machinery: the complement of the
//! homogeneous threshold `x₁ − x₀ ≥ 0`, via output negation — matching the
//! reference predicate exactly on bounded-degree inputs.

use weak_async_models::analysis::Predicate;
use weak_async_models::core::{
    negate, run_machine_until_stable, RandomScheduler, StabilityOptions,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::threshold_stack;

#[test]
fn strict_majority_via_negation() {
    let pred = Predicate::majority(); // x₀ > x₁
    for (a, b) in [(2u64, 1u64), (1, 2), (2, 2), (3, 2)] {
        let machine = negate(&threshold_stack(vec![-1, 1], 3).flat());
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, 3, 1, 23);
        let mut sched = RandomScheduler::exclusive(41);
        let r = run_machine_until_stable(
            &machine,
            &g,
            &mut sched,
            StabilityOptions::new(6_000_000, 5_000),
        );
        assert_eq!(
            r.verdict.decided(),
            Some(pred.eval(&c)),
            "strict majority ({a},{b})"
        );
    }
}
