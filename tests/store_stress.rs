//! Concurrency stress for the sharded [`VerdictStore`]: many threads
//! hammer one store with overlapping E1-grid jobs in scrambled orders,
//! and the outcome must be indistinguishable from a serial run —
//! bit-identical verdicts *and* certificate JSON for every job, with
//! each canonical isomorphism class decided at most once across all
//! threads (the store's pending-slot coalescing, not luck).
//!
//! Decisions run on the *canonical representative* of each class, so
//! the emitted certificate is a pure function of the store key: which
//! thread (and which labelled representative) wins the race cannot
//! change a single byte of the cached result.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use weak_async_models::analysis::{system_fingerprint, StoreKey, VerdictStore};
use weak_async_models::certify::{certificate_to_json, Decider, DecisionCertificate, StateTable};
use weak_async_models::core::{Backend, Schedule, Verdict};
use weak_async_models::graph::{
    canonical_form, generators, Graph, GraphBuilder, Label, LabelCount,
};
use weak_async_models::protocols::cutoff_one_machine;

const THREADS: usize = 8;
const PASSES: usize = 3;

/// A graph's canonical-class key, as produced by [`canonical_form`].
type ClassKey = (Vec<u16>, Vec<(u32, u32)>);

/// The E1 small-graph grid: five label counts across four families.
fn jobs() -> Vec<Graph> {
    let mut out = Vec::new();
    for (a, b) in [(3u64, 0u64), (2, 1), (1, 2), (2, 2), (3, 1)] {
        let c = LabelCount::from_vec(vec![a, b]);
        out.push(generators::labelled_cycle(&c));
        out.push(generators::labelled_line(&c));
        out.push(generators::labelled_star(&c));
        out.push(generators::labelled_clique(&c));
    }
    out
}

/// Rebuilds the canonical representative of `g`'s isomorphism class as a
/// concrete graph (the form's labels and edges, in canonical order).
fn canonical_graph(g: &Graph) -> Graph {
    let form = canonical_form(g);
    assert!(form.exact, "grid graphs are small enough for exact forms");
    let mut b = GraphBuilder::new(g.alphabet().clone());
    let ids: Vec<_> = form.labels.iter().map(|&l| b.node(Label(l))).collect();
    for &(u, v) in &form.edges {
        b.add_edge(ids[u as usize], ids[v as usize]);
    }
    b.build().expect("canonical form is a valid graph")
}

/// One certified decision of the presence machine on the canonical
/// representative, rendered to its JSON wire form. Deterministic: equal
/// keys produce byte-equal results.
fn decide_canonical(g: &Graph) -> (Verdict, String) {
    let machine = cutoff_one_machine(2, |p| p[1]);
    let cg = canonical_graph(g);
    let d = Decider::new(&machine, &cg)
        .schedule(Schedule::RoundRobin)
        .backend(Backend::Quotient)
        .certified(true)
        .limit(500_000)
        .decide()
        .expect("presence decides on the grid");
    let cert = d.certificate.expect("certified run emits a certificate");
    let json = match &cert {
        DecisionCertificate::Node(c) => certificate_to_json(c, &StateTable::from_certificate(c)),
        other => panic!("quotient backend emits node certificates, got {other:?}"),
    };
    (d.verdict, json)
}

/// A tiny multiplicative generator for per-thread job shuffles.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn concurrent_store_is_bit_identical_to_serial_with_at_most_one_decision_per_class() {
    let fp = system_fingerprint("stress/presence");
    let grid = jobs();

    // Serial reference: decide every distinct canonical class once.
    let mut reference: BTreeMap<ClassKey, (Verdict, String)> = BTreeMap::new();
    for g in &grid {
        let key = canonical_form(g).key();
        reference.entry(key).or_insert_with(|| decide_canonical(g));
    }
    let distinct = reference.len();
    assert!(
        distinct < grid.len(),
        "the grid must contain isomorphic duplicates to make contention real"
    );
    // Presence accepts exactly when a node is labelled 1.
    for g in &grid {
        let (verdict, _) = &reference[&canonical_form(g).key()];
        let expected = if g.label_count().get(Label(1)) >= 1 {
            Verdict::Accepts
        } else {
            Verdict::Rejects
        };
        assert_eq!(*verdict, expected, "serial reference verdict is wrong");
    }

    // Concurrent run: THREADS threads × PASSES passes over the grid, each
    // in its own scrambled order, all through one shared store.
    let store: Arc<VerdictStore<(Verdict, String)>> = Arc::new(VerdictStore::with_shards(16));
    let decisions = Arc::new(AtomicUsize::new(0));
    let reference = Arc::new(reference);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let store = Arc::clone(&store);
        let decisions = Arc::clone(&decisions);
        let reference = Arc::clone(&reference);
        let grid = grid.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(0xA076_1D64_78BD_642F ^ (t as u64 + 1));
            for _ in 0..PASSES {
                let mut order: Vec<usize> = (0..grid.len()).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, (rng.next() as usize) % (i + 1));
                }
                for &j in &order {
                    let g = &grid[j];
                    let key = StoreKey::new(fp, g);
                    let got = store.get_or_insert_with(&key, || {
                        decisions.fetch_add(1, Ordering::SeqCst);
                        decide_canonical(g)
                    });
                    let want = &reference[&canonical_form(g).key()];
                    assert_eq!(got.0, want.0, "verdict diverged from serial on job {j}");
                    assert_eq!(
                        got.1, want.1,
                        "certificate JSON diverged from serial on job {j}"
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress thread");
    }

    // At-most-once: THREADS × PASSES × |grid| lookups collapsed to one
    // decision per canonical class.
    assert_eq!(
        decisions.load(Ordering::SeqCst),
        distinct,
        "each canonical class must be decided exactly once"
    );
    assert_eq!(store.len(), distinct);
    assert_eq!(store.misses() as usize, distinct);
    let lookups = (THREADS * PASSES * grid.len()) as u64;
    assert_eq!(store.hits() + store.coalesced() + store.misses(), lookups);
    assert!(
        store.hits() > 0,
        "repeat passes must be served from the cache"
    );
}
