//! The `daf ≡ daF` collapse: for halting automata, adversarial and
//! pseudo-stochastic fairness give the same verdicts (once a node halts it
//! never moves, so the extra recurrence of pseudo-stochastic schedules buys
//! nothing). Verified for consistent halting machines across inputs.

use weak_async_models::certify::Decider;
use weak_async_models::core::{
    halting_violations, make_halting, ExclusiveSystem, Exploration, Machine, Output, Schedule,
};
use weak_async_models::graph::{generators, Label, LabelCount};

/// Halt after `delay` steps with the verdict given by the own label.
fn halting_by_label(delay: u8) -> Machine<(u8, bool)> {
    Machine::new(
        1,
        move |l: Label| (0u8, l.0 == 0),
        move |&(t, v), _| if t < delay { (t + 1, v) } else { (t, v) },
        move |&(t, v)| {
            if t < delay {
                Output::Neutral
            } else if v {
                Output::Accept
            } else {
                Output::Reject
            }
        },
    )
}

#[test]
fn halting_verdicts_agree_across_fairness() {
    let m = halting_by_label(2);
    for (a, b) in [(4u64, 0u64), (0, 4)] {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let ps = Decider::new(&m, &g)
            .limit(100_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        let rr = Decider::new(&m, &g)
            .schedule(Schedule::RoundRobin)
            .limit(100_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        let sy = Decider::new(&m, &g)
            .schedule(Schedule::Synchronous)
            .limit(100_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        assert_eq!(ps, rr, "({a},{b})");
        assert_eq!(ps, sy, "({a},{b})");
        assert_eq!(ps.decided(), Some(a > 0));
    }
}

#[test]
fn machine_is_verifiably_halting() {
    let m = halting_by_label(2);
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
    let sys = ExclusiveSystem::new(&m, &g);
    let e = Exploration::explore(&sys, 100_000).unwrap();
    assert!(halting_violations(&m, &g, &e).is_empty());
}

#[test]
fn make_halting_wrapper_collapses_fairness_too() {
    // Wrap the flooding machine: acceptance halts, rejection never does, so
    // the wrapped machine decides presence but can no longer decide absence
    // — verdicts still agree across fairness (both NoConsensus on absence).
    let flood = Machine::new(
        1,
        |l: Label| l.0 == 1,
        |&s: &bool, n| s || n.exists(|&t| t),
        |&s| if s { Output::Accept } else { Output::Neutral },
    );
    let halted = make_halting(&flood);
    for (a, b) in [(3u64, 1u64), (4, 0)] {
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let ps = Decider::new(&halted, &g)
            .limit(100_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        let rr = Decider::new(&halted, &g)
            .schedule(Schedule::RoundRobin)
            .limit(100_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        assert_eq!(ps, rr, "({a},{b})");
        if b > 0 {
            assert!(ps.is_accepting());
        } else {
            assert_eq!(ps.decided(), None, "absence is undecidable by halting");
        }
    }
}
