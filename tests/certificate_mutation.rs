//! Adversarial mutation testing of the certificate verifier: corrupt valid
//! certificates in targeted ways and check that the independent verifier
//! rejects every corruption — or, where a mutation can accidentally produce
//! another *genuinely valid* witness (dropping a path step may leave a
//! shortcut the semantics really allows), re-establish validity by direct
//! re-execution in the test itself, without trusting the verifier.

use proptest::prelude::*;
use weak_async_models::certify::{
    verify_machine, Certificate, Decider, DecisionCertificate, Polarity, StepSelection,
    VerifyOptions,
};
use weak_async_models::core::{Backend, Config, Machine, Output, Schedule, Selection, Verdict};
use weak_async_models::graph::{generators, Graph, LabelCount};

/// "Some node carries label x1", by flag flooding.
fn flood() -> Machine<bool> {
    Machine::new(
        1,
        |l| l.0 == 1,
        |&s, n| s || n.exists(|&t| t),
        |&s| if s { Output::Accept } else { Output::Reject },
    )
}

fn verify(
    m: &Machine<bool>,
    g: &Graph,
    cert: &Certificate<Config<bool>>,
) -> Result<Verdict, String> {
    verify_machine(m, g, cert, &VerifyOptions::default()).map_err(|e| e.to_string())
}

/// Emits a node-space certificate to mutate: the quotient backend always
/// produces one (with transport whenever the graph has symmetry), and the
/// lasso schedules ignore the backend.
fn certified(
    m: &Machine<bool>,
    g: &Graph,
    schedule: Schedule,
) -> (Verdict, Certificate<Config<bool>>) {
    let d = Decider::new(m, g)
        .schedule(schedule)
        .backend(Backend::Quotient)
        .certified(true)
        .limit(200_000)
        .decide()
        .unwrap();
    match d.certificate.unwrap() {
        DecisionCertificate::Node(cert) => (d.verdict, cert),
        other => panic!("expected a node certificate, got {other:?}"),
    }
}

/// Replays one recorded step by direct machine semantics — the test's own
/// ground truth, independent of the verifier's implementation.
fn direct_step(
    m: &Machine<bool>,
    g: &Graph,
    c: &Config<bool>,
    sel: &StepSelection,
) -> Config<bool> {
    match sel {
        StepSelection::Node(v) => c.successor(m, g, &Selection::exclusive(*v as usize)),
        StepSelection::All => c.successor(m, g, &Selection::all(g)),
        StepSelection::Choice(_) => panic!("machine-level certificates use node selections"),
    }
}

/// Whether `path` is genuinely valid by direct re-execution.
fn path_replays(m: &Machine<bool>, g: &Graph, cert: &Certificate<Config<bool>>) -> bool {
    let Certificate::Stable(s) = cert else {
        return false;
    };
    let mut cur = s.path.start.clone();
    for step in &s.path.steps {
        cur = direct_step(m, g, &cur, &step.selection);
        if cur != step.to {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    #[test]
    fn flipped_polarity_is_rejected(a in 1u64..4, b in 1u64..3) {
        prop_assume!(a + b >= 3);
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let (_, out_certificate) = certified(&m, &g, Schedule::PseudoStochastic);
        let Certificate::Stable(mut s) = out_certificate else {
            panic!("flood on mixed labels yields a stable certificate");
        };
        s.polarity = match s.polarity {
            Polarity::Accepting => Polarity::Rejecting,
            Polarity::Rejecting => Polarity::Accepting,
        };
        prop_assert!(
            verify(&m, &g, &Certificate::Stable(s)).is_err(),
            "a flipped polarity must never verify"
        );
    }

    #[test]
    fn removed_invariant_member_is_rejected(
        a in 1u64..4,
        b in 1u64..3,
        pick in 0usize..64,
    ) {
        prop_assume!(a + b >= 3);
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let (_, out_certificate) = certified(&m, &g, Schedule::PseudoStochastic);
        let Certificate::Stable(mut s) = out_certificate else {
            panic!("expected a stable certificate");
        };
        let i = pick % s.invariant.members.len();
        s.invariant.members.remove(i);
        if let Some(t) = s.invariant.transport.as_mut() {
            t.closure.remove(i);
        }
        // Every member of the emitted invariant is reachable from the
        // endpoint, so it is either the endpoint itself or the target of a
        // closure edge: removal must break the endpoint check or the
        // closure check.
        prop_assert!(
            verify(&m, &g, &Certificate::Stable(s)).is_err(),
            "removing any invariant member must break closure"
        );
    }

    #[test]
    fn corrupted_path_config_is_rejected(
        a in 1u64..4,
        b in 1u64..3,
        step_pick in 0usize..64,
        node_pick in 0usize..64,
    ) {
        prop_assume!(a + b >= 3);
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let (_, out_certificate) = certified(&m, &g, Schedule::PseudoStochastic);
        let Certificate::Stable(mut s) = out_certificate else {
            panic!("expected a stable certificate");
        };
        prop_assume!(!s.path.steps.is_empty());
        let i = step_pick % s.path.steps.len();
        let v = node_pick % g.node_count();
        // Flip one node's state in a recorded intermediate configuration:
        // the recorded selection derives a unique successor, so any flip
        // diverges from it.
        let mut states = s.path.steps[i].to.states().to_vec();
        states[v] = !states[v];
        s.path.steps[i].to = Config::from_states(states);
        prop_assert!(
            verify(&m, &g, &Certificate::Stable(s)).is_err(),
            "a corrupted path configuration must never verify"
        );
    }

    #[test]
    fn dropped_path_step_is_rejected_or_genuinely_valid(
        a in 1u64..4,
        b in 1u64..3,
        step_pick in 0usize..64,
    ) {
        prop_assume!(a + b >= 3);
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let (out_verdict, out_certificate) = certified(&m, &g, Schedule::PseudoStochastic);
        let Certificate::Stable(mut s) = out_certificate else {
            panic!("expected a stable certificate");
        };
        prop_assume!(!s.path.steps.is_empty());
        let i = step_pick % s.path.steps.len();
        s.path.steps.remove(i);
        let mutated = Certificate::Stable(s);
        // Rejection is always sound here: even when the shortened path
        // still replays (dropping the *last* step does that), the endpoint
        // moved away from the invariant, which the verifier is right to
        // refuse. Dropping a step may instead leave a shortcut the
        // semantics genuinely allows (the skipped node's update was
        // independent); in that case re-execution in the test must agree
        // with the verifier.
        if let Ok(v) = verify(&m, &g, &mutated) {
            prop_assert_eq!(v, out_verdict);
            prop_assert!(
                path_replays(&m, &g, &mutated),
                "verifier accepted a path that direct replay refutes"
            );
        }
    }

    #[test]
    fn swapped_transport_perm_is_rejected_or_still_an_automorphism(
        i_pick in 0usize..64,
        j_pick in 0usize..64,
        x_pick in 0usize..64,
        y_pick in 0usize..64,
    ) {
        // A 6-cycle with one marked node under the forced quotient
        // backend: the certificate carries transport permutations.
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![5, 1]));
        let (out_verdict, out_certificate) = certified(&m, &g, Schedule::PseudoStochastic);
        let Certificate::Stable(mut s) = out_certificate else {
            panic!("expected a stable certificate");
        };
        let t = s.invariant.transport.as_mut().expect("quotient run carries transport");
        prop_assume!(!t.closure.is_empty());
        let i = i_pick % t.closure.len();
        prop_assume!(!t.closure[i].is_empty());
        let j = j_pick % t.closure[i].len();
        let perm = &mut t.closure[i][j];
        let n = perm.len();
        let (x, y) = (x_pick % n, y_pick % n);
        prop_assume!(x != y);
        perm.swap(x, y);
        let swapped: Vec<u32> = perm.clone();
        let mutated = Certificate::Stable(s);
        if let Ok(v) = verify(&m, &g, &mutated) {
            // The swap kept the map a bijection; acceptance is only
            // legitimate if it is *still* a structural automorphism —
            // checked here directly against the edge relation.
            prop_assert_eq!(v, out_verdict);
            let is_auto = g.nodes().all(|u| {
                g.neighbours(u)
                    .iter()
                    .all(|&w| g.has_edge(swapped[u] as usize, swapped[w] as usize))
            });
            prop_assert!(
                is_auto,
                "verifier accepted a transport perm that does not \
                 preserve the edge relation"
            );
        }
    }

    #[test]
    fn flipped_lasso_verdict_is_rejected(a in 1u64..4, b in 0u64..3) {
        prop_assume!(a + b >= 3);
        let m = flood();
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let (_, out_certificate) = certified(&m, &g, Schedule::Synchronous);
        let Certificate::Lasso(mut l) = out_certificate else {
            panic!("synchronous decider emits lasso certificates");
        };
        l.verdict = match l.verdict {
            Verdict::Accepts => Verdict::Rejects,
            _ => Verdict::Accepts,
        };
        prop_assert!(
            verify(&m, &g, &Certificate::Lasso(l)).is_err(),
            "a flipped lasso verdict must never verify"
        );
    }
}
