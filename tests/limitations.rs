//! The limitation lemmata of Section 3, demonstrated end to end.

use weak_async_models::analysis::{classify, Predicate, PropertyClass, StarSystem};
use weak_async_models::certify::Decider;
use weak_async_models::core::{Config, Exploration, Machine, Output, Schedule, Selection};
use weak_async_models::extensions::compile_broadcasts;
use weak_async_models::graph::surgery::{find_cycle_edge, halting_composite};
use weak_async_models::graph::{generators, lambda_fold_cycle_cover, Label, LabelCount};
use weak_async_models::protocols::threshold_machine;

/// Lemma 3.1: a halting automaton separating two cyclic graphs loses
/// consistency on the surgery composite.
#[test]
fn halting_surgery_breaks_consistency() {
    let m = Machine::new(
        1,
        |l: Label| (0u8, l.0 == 0),
        |&(t, v), _| if t < 2 { (t + 1, v) } else { (t, v) },
        |&(t, v)| {
            if t < 2 {
                Output::Neutral
            } else if v {
                Output::Accept
            } else {
                Output::Reject
            }
        },
    );
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 0]));
    let h = generators::labelled_cycle(&LabelCount::from_vec(vec![0, 4]));
    assert!(Decider::new(&m, &g)
        .schedule(Schedule::Synchronous)
        .limit(10_000)
        .decide()
        .map(|d| d.verdict)
        .unwrap()
        .is_accepting());
    assert!(Decider::new(&m, &h)
        .schedule(Schedule::Synchronous)
        .limit(10_000)
        .decide()
        .map(|d| d.verdict)
        .unwrap()
        .is_rejecting());

    let composite = halting_composite(
        &g,
        find_cycle_edge(&g).unwrap(),
        5,
        &h,
        find_cycle_edge(&h).unwrap(),
        5,
    );
    let v = Decider::new(&m, &composite.graph)
        .schedule(Schedule::Synchronous)
        .limit(10_000)
        .decide()
        .map(|d| d.verdict)
        .unwrap();
    assert_eq!(v.decided(), None, "GH must never reach a consensus");
}

/// Lemma 3.2: synchronous runs on a graph and its covering stay in
/// lockstep, so the verdicts coincide even when the truth values differ.
#[test]
fn coverings_are_indistinguishable_synchronously() {
    let base = generators::labelled_cycle(&LabelCount::from_vec(vec![1, 2]));
    let (cover, map) = lambda_fold_cycle_cover(&base, 3);
    let machine = compile_broadcasts(&threshold_machine(2, 0, 2));

    let mut cb = Config::initial(&machine, &base);
    let mut cc = Config::initial(&machine, &cover);
    for _ in 0..150 {
        for v in cover.nodes() {
            assert_eq!(cc.state(v), cb.state(map.image(v)));
        }
        cb = cb.successor(&machine, &base, &Selection::all(&base));
        cc = cc.successor(&machine, &cover, &Selection::all(&cover));
    }
    assert_eq!(
        Decider::new(&machine, &base)
            .schedule(Schedule::Synchronous)
            .limit(1_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap(),
        Decider::new(&machine, &cover)
            .schedule(Schedule::Synchronous)
            .limit(1_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap(),
    );
}

/// Lemma 3.5 (shape): the dAF threshold ladder's verdict on stars flips
/// exactly at its threshold and is constant beyond — a cutoff. Uses the
/// plain Lemma C.5 ladder (states `0..=k`) to keep exploration small.
#[test]
fn star_verdicts_admit_cutoffs() {
    use std::sync::Arc;
    use weak_async_models::extensions::{BroadcastMachine, BroadcastSystem, ResponseFn};
    for k in [1u32, 2] {
        let base = Machine::new(
            1,
            move |l: Label| if l.0 == 0 { 1u32 } else { 0 },
            |&s: &u32, _| s,
            move |&s| {
                if s == k {
                    Output::Accept
                } else {
                    Output::Reject
                }
            },
        );
        let bm = BroadcastMachine::new(
            base,
            move |&s| s >= 1,
            move |&s| {
                if s == k {
                    (k, Arc::new(move |_: &u32| k) as ResponseFn<u32>)
                } else {
                    (
                        s,
                        Arc::new(move |&r: &u32| if r == s && r < k { r + 1 } else { r })
                            as ResponseFn<u32>,
                    )
                }
            },
        );
        let mut series = Vec::new();
        for a in 0..=4u64 {
            let g = generators::labelled_star(&LabelCount::from_vec(vec![a, 3]));
            let sys = BroadcastSystem::new(&bm, &g);
            series.push(
                Exploration::explore(&sys, 1_000_000)
                    .map(|e| e.verdict())
                    .unwrap(),
            );
        }
        // The verdict changes exactly once (at a = k) and stays constant.
        let flips = series.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "k={k}: {series:?}");
        assert_ne!(series[0], *series.last().unwrap());
    }
}

/// The symmetry-reduced star decider agrees with the node-explicit one on
/// the flat (compiled) threshold machine for the smallest instances —
/// Lemma 3.5's representation is sound.
#[test]
fn star_system_agrees_with_explicit_on_compiled_machine() {
    let flat = compile_broadcasts(&threshold_machine(2, 0, 1));
    for a in [1u64, 2] {
        let sys = StarSystem::new(&flat, Label(1), vec![(Label(0), a), (Label(1), 1)]);
        let reduced = Exploration::explore(&sys, 2_000_000)
            .map(|e| e.verdict())
            .unwrap();
        let g = generators::labelled_star(&LabelCount::from_vec(vec![a, 2]));
        let explicit = weak_async_models::certify::Decider::new(&flat, &g)
            .limit(2_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        // Note: labelled_star places the centre on the first expanded label
        // (a), while the reduced system above centres a b-node; labelling
        // properties make the choice irrelevant for this machine.
        assert_eq!(reduced, explicit, "a={a}");
    }
}

/// Corollary 3.6 backdrop: majority admits no cutoff, presence does.
#[test]
fn predicate_classes_match_paper() {
    assert_eq!(
        classify(&Predicate::majority(), 10),
        PropertyClass::NoCutoff
    );
    assert_eq!(
        classify(&Predicate::threshold(2, 0, 1), 10),
        PropertyClass::CutoffOne
    );
    assert_eq!(
        classify(&Predicate::threshold(2, 0, 4), 12),
        PropertyClass::Cutoff(4)
    );
    assert_eq!(classify(&Predicate::True, 10), PropertyClass::Trivial);
}
