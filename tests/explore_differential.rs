//! Differential tests for the parallel exploration engine: on random
//! machines and random graphs, the parallel engine must produce *exactly*
//! the exploration the sequential engine does — same dense ids, same CSR
//! edges, same flags, same verdicts, same `Pre*` fixpoints. The engine is
//! deterministic by construction (shard-major first-occurrence id
//! assignment), so these are equality checks, not just agreement checks.

use proptest::prelude::*;
use weak_async_models::core::{
    ExclusiveSystem, Exploration, ExploreOptions, Machine, Output, TransitionSystem, Verdict,
};
use weak_async_models::graph::{generators, Graph, Label, LabelCount};

const STATES: u8 = 3;

/// A table-driven machine over states `0..STATES` with counting bound 1:
/// the transition reads only the *presence bitmask* of neighbouring states,
/// so `table[s * 2^STATES + mask]` fully determines δ. `init` maps the two
/// labels to start states and `outs` maps states to outputs — every such
/// table is a well-formed machine, so sampling tables samples machines.
fn table_machine(init: [u8; 2], table: Vec<u8>, outs: [u8; STATES as usize]) -> Machine<u8> {
    assert_eq!(table.len(), (STATES as usize) << STATES);
    Machine::new(
        1,
        move |l: Label| init[l.0 as usize % 2] % STATES,
        move |&s: &u8, n| {
            let mask: usize = (0..STATES)
                .filter(|q| n.exists(|&t| t == *q))
                .map(|q| 1usize << q)
                .sum();
            table[((s as usize) << STATES) | mask] % STATES
        },
        move |&s| match outs[s as usize % STATES as usize] % 3 {
            0 => Output::Reject,
            1 => Output::Accept,
            _ => Output::Neutral,
        },
    )
}

fn random_graph(shape: u8, a: u64, b: u64, seed: u64) -> Graph {
    let c = LabelCount::from_vec(vec![a, b]);
    match shape % 3 {
        0 => generators::labelled_cycle(&c),
        1 => generators::labelled_line(&c),
        _ => generators::random_degree_bounded(&c, 3, 2, seed),
    }
}

fn explore_pair(
    sys: &ExclusiveSystem<'_, u8>,
) -> (
    Exploration<weak_async_models::core::Config<u8>>,
    Exploration<weak_async_models::core::Config<u8>>,
) {
    let seq = Exploration::explore_with(
        sys,
        sys.initial_config(),
        ExploreOptions::with_limit(200_000).threads(1),
    )
    .expect("sequential exploration");
    let par = Exploration::explore_with(
        sys,
        sys.initial_config(),
        // frontier_threshold 1 forces the parallel path on every level
        ExploreOptions::with_limit(200_000)
            .threads(4)
            .frontier_threshold(1),
    )
    .expect("parallel exploration");
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Parallel and sequential exploration of a random machine on a random
    /// graph agree on everything observable: reachable set (as an ordered
    /// id-indexed sequence), successor CSR, acceptance flags, stable sets,
    /// and the verdict.
    #[test]
    fn parallel_matches_sequential(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..3,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        let sys = ExclusiveSystem::new(&m, &g);
        let (seq, par) = explore_pair(&sys);

        prop_assert_eq!(seq.len(), par.len());
        prop_assert_eq!(seq.configs(), par.configs());
        for i in 0..seq.len() {
            prop_assert_eq!(seq.successors(i), par.successors(i));
            prop_assert_eq!(seq.is_accepting(i), par.is_accepting(i));
            prop_assert_eq!(seq.is_rejecting(i), par.is_rejecting(i));
        }
        let (sa, pa) = (seq.stably_accepting(), par.stably_accepting());
        let (sr, pr) = (seq.stably_rejecting(), par.stably_rejecting());
        prop_assert_eq!(sa.iter().filter(|&&x| x).count(), pa.iter().filter(|&&x| x).count());
        prop_assert_eq!(sr.iter().filter(|&&x| x).count(), pr.iter().filter(|&&x| x).count());
        prop_assert_eq!(sa, pa);
        prop_assert_eq!(sr, pr);
        prop_assert_eq!(seq.verdict(), par.verdict());
    }

    /// Two parallel explorations are bit-identical: the engine's id
    /// assignment is a pure function of the transition system, independent
    /// of thread scheduling.
    #[test]
    fn parallel_runs_are_deterministic(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        shape in 0u8..3,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [0, 1, 2]);
        let g = random_graph(shape, a, b, seed);
        let sys = ExclusiveSystem::new(&m, &g);
        let opts = ExploreOptions::with_limit(200_000).threads(4).frontier_threshold(1);
        let e1 = Exploration::explore_with(&sys, sys.initial_config(), opts).unwrap();
        let e2 = Exploration::explore_with(&sys, sys.initial_config(), opts).unwrap();
        prop_assert_eq!(e1.configs(), e2.configs());
        for i in 0..e1.len() {
            prop_assert_eq!(e1.successors(i), e2.successors(i));
        }
        prop_assert_eq!(e1.verdict(), e2.verdict());
    }

    /// `index_of` inverts `configs()` on both engines, and `pre_star` from
    /// the same target flags is identical.
    #[test]
    fn index_and_pre_star_agree(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        a in 1u64..4,
        b in 1u64..4,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [1, 0, 2]);
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let sys = ExclusiveSystem::new(&m, &g);
        let (seq, par) = explore_pair(&sys);
        for (i, c) in seq.configs().iter().enumerate() {
            prop_assert_eq!(seq.index_of(c), Some(i));
            prop_assert_eq!(par.index_of(c), Some(i));
        }
        // Pre* of the accepting set, computed on both explorations.
        let targets: Vec<bool> = (0..seq.len()).map(|i| seq.is_accepting(i)).collect();
        prop_assert_eq!(seq.pre_star(&targets), par.pre_star(&targets));
    }
}

/// Smoke check outside proptest: on a machine with a known verdict the
/// parallel engine returns it (guards against a trivially-agreeing bug in
/// both paths).
#[test]
fn parallel_engine_gets_known_verdict_right() {
    let m = Machine::new(
        1,
        |l: Label| l.0 == 1,
        |&s: &bool, n| s || n.exists(|&t| t),
        |&s| if s { Output::Accept } else { Output::Reject },
    );
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![6, 2]));
    let sys = ExclusiveSystem::new(&m, &g);
    let e = Exploration::explore_with(
        &sys,
        sys.initial_config(),
        ExploreOptions::with_limit(1_000_000)
            .threads(4)
            .frontier_threshold(1),
    )
    .unwrap();
    assert_eq!(e.verdict(), Verdict::Accepts);
}
