//! Differential tests for the parallel exploration engine: on random
//! machines and random graphs, the parallel engine must produce *exactly*
//! the exploration the sequential engine does — same dense ids, same CSR
//! edges, same flags, same verdicts, same `Pre*` fixpoints. The engine is
//! deterministic by construction (shard-major first-occurrence id
//! assignment), so these are equality checks, not just agreement checks.

use proptest::prelude::*;
use weak_async_models::core::{
    EdgeEncoding, ExclusiveSystem, Exploration, ExploreOptions, Machine, Output, TransitionSystem,
    Verdict,
};
use weak_async_models::graph::{generators, Graph, Label, LabelCount};

const STATES: u8 = 3;

/// A table-driven machine over states `0..STATES` with counting bound 1:
/// the transition reads only the *presence bitmask* of neighbouring states,
/// so `table[s * 2^STATES + mask]` fully determines δ. `init` maps the two
/// labels to start states and `outs` maps states to outputs — every such
/// table is a well-formed machine, so sampling tables samples machines.
fn table_machine(init: [u8; 2], table: Vec<u8>, outs: [u8; STATES as usize]) -> Machine<u8> {
    assert_eq!(table.len(), (STATES as usize) << STATES);
    Machine::new(
        1,
        move |l: Label| init[l.0 as usize % 2] % STATES,
        move |&s: &u8, n| {
            let mask: usize = (0..STATES)
                .filter(|q| n.exists(|&t| t == *q))
                .map(|q| 1usize << q)
                .sum();
            table[((s as usize) << STATES) | mask] % STATES
        },
        move |&s| match outs[s as usize % STATES as usize] % 3 {
            0 => Output::Reject,
            1 => Output::Accept,
            _ => Output::Neutral,
        },
    )
}

fn random_graph(shape: u8, a: u64, b: u64, seed: u64) -> Graph {
    let c = LabelCount::from_vec(vec![a, b]);
    match shape % 3 {
        0 => generators::labelled_cycle(&c),
        1 => generators::labelled_line(&c),
        _ => generators::random_degree_bounded(&c, 3, 2, seed),
    }
}

fn explore_pair(
    sys: &ExclusiveSystem<'_, u8>,
) -> (
    Exploration<weak_async_models::core::Config<u8>>,
    Exploration<weak_async_models::core::Config<u8>>,
) {
    let seq = Exploration::explore_with(
        sys,
        sys.initial_config(),
        ExploreOptions::with_limit(200_000).threads(1),
    )
    .expect("sequential exploration");
    let par = Exploration::explore_with(
        sys,
        sys.initial_config(),
        // frontier_threshold 1 forces the parallel path on every level
        ExploreOptions::with_limit(200_000)
            .threads(4)
            .frontier_threshold(1),
    )
    .expect("parallel exploration");
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Parallel and sequential exploration of a random machine on a random
    /// graph agree on everything observable: reachable set (as an ordered
    /// id-indexed sequence), successor CSR, acceptance flags, stable sets,
    /// and the verdict.
    #[test]
    fn parallel_matches_sequential(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..3,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        let sys = ExclusiveSystem::new(&m, &g);
        let (seq, par) = explore_pair(&sys);

        prop_assert_eq!(seq.len(), par.len());
        prop_assert_eq!(seq.configs(), par.configs());
        for i in 0..seq.len() {
            prop_assert_eq!(seq.successors(i), par.successors(i));
            prop_assert_eq!(seq.is_accepting(i), par.is_accepting(i));
            prop_assert_eq!(seq.is_rejecting(i), par.is_rejecting(i));
        }
        let (sa, pa) = (seq.stably_accepting(), par.stably_accepting());
        let (sr, pr) = (seq.stably_rejecting(), par.stably_rejecting());
        prop_assert_eq!(sa.iter().filter(|&&x| x).count(), pa.iter().filter(|&&x| x).count());
        prop_assert_eq!(sr.iter().filter(|&&x| x).count(), pr.iter().filter(|&&x| x).count());
        prop_assert_eq!(sa, pa);
        prop_assert_eq!(sr, pr);
        prop_assert_eq!(seq.verdict(), par.verdict());
    }

    /// Two parallel explorations are bit-identical: the engine's id
    /// assignment is a pure function of the transition system, independent
    /// of thread scheduling.
    #[test]
    fn parallel_runs_are_deterministic(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        shape in 0u8..3,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [0, 1, 2]);
        let g = random_graph(shape, a, b, seed);
        let sys = ExclusiveSystem::new(&m, &g);
        let opts = ExploreOptions::with_limit(200_000).threads(4).frontier_threshold(1);
        let e1 = Exploration::explore_with(&sys, sys.initial_config(), opts).unwrap();
        let e2 = Exploration::explore_with(&sys, sys.initial_config(), opts).unwrap();
        prop_assert_eq!(e1.configs(), e2.configs());
        for i in 0..e1.len() {
            prop_assert_eq!(e1.successors(i), e2.successors(i));
        }
        prop_assert_eq!(e1.verdict(), e2.verdict());
    }

    /// `index_of` inverts `configs()` on both engines, and `pre_star` from
    /// the same target flags is identical.
    #[test]
    fn index_and_pre_star_agree(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        a in 1u64..4,
        b in 1u64..4,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [1, 0, 2]);
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let sys = ExclusiveSystem::new(&m, &g);
        let (seq, par) = explore_pair(&sys);
        for (i, c) in seq.configs().iter().enumerate() {
            prop_assert_eq!(seq.index_of(c), Some(i));
            prop_assert_eq!(par.index_of(c), Some(i));
        }
        // Pre* of the accepting set, computed on both explorations.
        let targets: Vec<bool> = (0..seq.len()).map(|i| seq.is_accepting(i)).collect();
        prop_assert_eq!(seq.pre_star(&targets), par.pre_star(&targets));
    }

    /// The parallel fixpoint rounds (frontier-chunked backward BFS with
    /// merged per-worker bitsets) compute the same least fixpoints as the
    /// scalar worklist — checked on `pre_star` from *random* target sets,
    /// the stable sets, and the verdict.
    #[test]
    fn parallel_fixpoints_match_sequential(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..3,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
        target_seed in 0u64..1_000_000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        let sys = ExclusiveSystem::new(&m, &g);
        let (seq, par) = explore_pair(&sys);
        // A pseudo-random target set, identical on both sides.
        let targets: Vec<bool> = (0..seq.len())
            .map(|i| (target_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64)
                      .wrapping_mul(0xbf58_476d_1ce4_e5b9) >> 32) & 1 == 1)
            .collect();
        prop_assert_eq!(seq.pre_star(&targets), par.pre_star(&targets));
        prop_assert_eq!(seq.stably_accepting(), par.stably_accepting());
        prop_assert_eq!(seq.stably_rejecting(), par.stably_rejecting());
        prop_assert_eq!(seq.verdict(), par.verdict());
    }

    /// The compact and spilled edge representations are observationally
    /// identical to the plain CSR: same rows, same fixpoints (the spilled
    /// store runs the streaming `Pre*`), same verdict.
    #[test]
    fn encodings_agree_on_random_systems(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        shape in 0u8..3,
        a in 1u64..5,
        b in 1u64..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = random_graph(shape, a, b, seed);
        let sys = ExclusiveSystem::new(&m, &g);
        let base = ExploreOptions::with_limit(200_000);
        let plain = Exploration::explore_with(&sys, sys.initial_config(), base).unwrap();
        let compact = Exploration::explore_with(
            &sys,
            sys.initial_config(),
            base.edge_encoding(EdgeEncoding::Compact),
        )
        .unwrap();
        // A 64-byte budget spills as soon as the stream outgrows the
        // minimum flush chunk; tiny explorations legitimately stay
        // resident, so spilling itself is asserted in the deterministic
        // test below, not here.
        let spilled = Exploration::explore_with(
            &sys,
            sys.initial_config(),
            base.memory_budget(64),
        )
        .unwrap();
        prop_assert_eq!(plain.configs(), compact.configs());
        prop_assert_eq!(plain.configs(), spilled.configs());
        for i in 0..plain.len() {
            prop_assert_eq!(plain.successors(i), compact.successors(i));
            prop_assert_eq!(plain.successors(i), spilled.successors(i));
        }
        let targets: Vec<bool> = (0..plain.len()).map(|i| plain.is_accepting(i)).collect();
        prop_assert_eq!(plain.pre_star(&targets), compact.pre_star(&targets));
        prop_assert_eq!(plain.pre_star(&targets), spilled.pre_star(&targets));
        prop_assert_eq!(plain.stably_accepting(), compact.stably_accepting());
        prop_assert_eq!(plain.stably_accepting(), spilled.stably_accepting());
        prop_assert_eq!(plain.stably_rejecting(), compact.stably_rejecting());
        prop_assert_eq!(plain.stably_rejecting(), spilled.stably_rejecting());
        prop_assert_eq!(plain.verdict(), compact.verdict());
        prop_assert_eq!(plain.verdict(), spilled.verdict());
    }
}

/// A workload big enough that a small memory budget genuinely flushes edge
/// segments to disk: the spill path must report itself and still agree
/// with the in-memory exploration on everything observable.
#[test]
fn spilled_exploration_matches_in_memory() {
    // Each move toggles the mover, so all 2^10 flag vectors are reachable
    // — over ten thousand edges, comfortably past the minimum flush chunk.
    let m = Machine::new(
        1,
        |_: Label| false,
        |&s: &bool, _| !s,
        |&s| if s { Output::Accept } else { Output::Reject },
    );
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![8, 2]));
    let sys = ExclusiveSystem::new(&m, &g);
    let base = ExploreOptions::with_limit(1_000_000);
    let mem = Exploration::explore_with(&sys, sys.initial_config(), base).unwrap();
    let spill =
        Exploration::explore_with(&sys, sys.initial_config(), base.memory_budget(1024)).unwrap();
    assert!(!mem.was_spilled());
    assert!(spill.was_spilled(), "budget must force a spill");
    assert!(spill.spilled_bytes() > 0);
    assert_eq!(mem.configs(), spill.configs());
    assert_eq!(mem.edge_count(), spill.edge_count());
    for i in 0..mem.len() {
        assert_eq!(mem.successors(i), spill.successors(i));
    }
    assert_eq!(mem.stably_accepting(), spill.stably_accepting());
    assert_eq!(mem.stably_rejecting(), spill.stably_rejecting());
    assert_eq!(mem.verdict(), spill.verdict());
    assert_eq!(mem.verdict(), Verdict::NoConsensus);
    assert_eq!(mem.len(), 1 << 10);
}

/// Smoke check outside proptest: on a machine with a known verdict the
/// parallel engine returns it (guards against a trivially-agreeing bug in
/// both paths).
#[test]
fn parallel_engine_gets_known_verdict_right() {
    let m = Machine::new(
        1,
        |l: Label| l.0 == 1,
        |&s: &bool, n| s || n.exists(|&t| t),
        |&s| if s { Output::Accept } else { Output::Reject },
    );
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![6, 2]));
    let sys = ExclusiveSystem::new(&m, &g);
    let e = Exploration::explore_with(
        &sys,
        sys.initial_config(),
        ExploreOptions::with_limit(1_000_000)
            .threads(4)
            .frontier_threshold(1),
    )
    .unwrap();
    assert_eq!(e.verdict(), Verdict::Accepts);
}
