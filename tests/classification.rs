//! End-to-end classification checks: each class's witness protocol decides
//! its predicate exactly, across graph shapes — the executable core of
//! Figure 1.

use weak_async_models::analysis::Predicate;
use weak_async_models::certify::Decider;
use weak_async_models::core::{ModelClass, PropertyClassBound, Schedule};
use weak_async_models::extensions::{
    compile_broadcasts, compile_rendezvous, GraphPopulationProtocol, MajorityState,
};
use weak_async_models::graph::{generators, Graph, LabelCount};
use weak_async_models::protocols::{cutoff_one_machine, modulo_protocol, threshold_machine};

fn suite(c: &LabelCount) -> Vec<Graph> {
    vec![
        generators::labelled_cycle(c),
        generators::labelled_line(c),
        generators::labelled_star(c),
        generators::labelled_clique(c),
    ]
}

fn counts() -> Vec<LabelCount> {
    [(3u64, 0u64), (2, 1), (1, 2), (2, 2), (3, 1), (0, 3)]
        .into_iter()
        .map(|(a, b)| LabelCount::from_vec(vec![a, b]))
        .collect()
}

#[test]
fn daf_lower_presence_under_all_adversarial_schedules() {
    let m = cutoff_one_machine(2, |p| p[0]);
    let pred = Predicate::threshold(2, 0, 1);
    for c in counts() {
        for g in suite(&c) {
            let expect = Some(pred.eval(&c));
            assert_eq!(
                Decider::new(&m, &g)
                    .schedule(Schedule::RoundRobin)
                    .limit(1_000_000)
                    .decide()
                    .map(|d| d.verdict)
                    .unwrap()
                    .decided(),
                expect
            );
            assert_eq!(
                Decider::new(&m, &g)
                    .schedule(Schedule::Synchronous)
                    .limit(1_000_000)
                    .decide()
                    .map(|d| d.verdict)
                    .unwrap()
                    .decided(),
                expect
            );
            assert_eq!(
                Decider::new(&m, &g)
                    .limit(1_000_000)
                    .decide()
                    .map(|d| d.verdict)
                    .unwrap()
                    .decided(),
                expect
            );
        }
    }
}

#[test]
fn daf_upper_threshold_exact_under_pseudo_stochastic() {
    let flat = compile_broadcasts(&threshold_machine(2, 0, 2));
    let pred = Predicate::threshold(2, 0, 2);
    for c in counts() {
        for g in suite(&c) {
            assert_eq!(
                Decider::new(&flat, &g)
                    .limit(3_000_000)
                    .decide()
                    .map(|d| d.verdict)
                    .unwrap()
                    .decided(),
                Some(pred.eval(&c)),
                "{c} on {g:?}"
            );
        }
    }
}

#[test]
fn daf_top_majority_and_parity_exact() {
    let majority = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    let parity = compile_rendezvous(&modulo_protocol(vec![1, 0], 2, 0));
    let maj_pred = Predicate::majority();
    let par_pred = Predicate::modulo(vec![1, 0], 2, 0);
    for c in counts() {
        for g in suite(&c) {
            assert_eq!(
                Decider::new(&majority, &g)
                    .limit(5_000_000)
                    .decide()
                    .map(|d| d.verdict)
                    .unwrap()
                    .decided(),
                Some(maj_pred.eval(&c)),
                "majority on {c}"
            );
            assert_eq!(
                Decider::new(&parity, &g)
                    .limit(5_000_000)
                    .decide()
                    .map(|d| d.verdict)
                    .unwrap()
                    .decided(),
                Some(par_pred.eval(&c)),
                "parity on {c}"
            );
        }
    }
}

#[test]
fn figure_one_panels_are_internally_consistent() {
    for class in ModelClass::all() {
        let arbitrary = class.labelling_power_arbitrary();
        let bounded = class.labelling_power_bounded_degree();
        // Bounded-degree power never shrinks.
        let rank = |p: PropertyClassBound| match p {
            PropertyClassBound::Trivial => 0,
            PropertyClassBound::CutoffOne => 1,
            PropertyClassBound::Cutoff => 2,
            PropertyClassBound::InvariantScalarMult => 3,
            PropertyClassBound::NL => 4,
            PropertyClassBound::NSpaceLinear => 5,
        };
        assert!(rank(bounded) >= rank(arbitrary), "{class}");
        // Equivalent classes agree.
        assert_eq!(
            class.canonical().labelling_power_arbitrary(),
            arbitrary,
            "{class}"
        );
    }
}
