//! Closure of decidable properties under boolean combinations, at the
//! machine level: products of compiled DAF protocols decide conjunctions,
//! disjunctions and exclusive-ors of their predicates — exactly on graphs
//! from several bounded-degree families, including the tree generators.

use weak_async_models::analysis::Predicate;
use weak_async_models::certify::Decider;
use weak_async_models::core::{negate, product, Combine};
use weak_async_models::extensions::{compile_rendezvous, GraphPopulationProtocol, MajorityState};
use weak_async_models::graph::{generators, trees, Graph, LabelCount};
use weak_async_models::protocols::modulo_protocol;

fn family(c: &LabelCount) -> Vec<Graph> {
    vec![
        generators::labelled_cycle(c),
        trees::labelled_binary_tree(c),
        trees::labelled_caterpillar(c),
    ]
}

#[test]
fn majority_and_parity_product() {
    let majority = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    let parity = compile_rendezvous(&modulo_protocol(vec![1, 0], 2, 0));
    let both = product(&majority, &parity, Combine::And);
    let pred = Predicate::majority() & Predicate::modulo(vec![1, 0], 2, 0);
    for (a, b) in [(2u64, 1u64), (3, 1), (1, 2), (2, 2)] {
        let c = LabelCount::from_vec(vec![a, b]);
        for g in family(&c) {
            let v = Decider::new(&both, &g)
                .limit(5_000_000)
                .decide()
                .map(|d| d.verdict)
                .unwrap();
            assert_eq!(v.decided(), Some(pred.eval(&c)), "({a},{b}) on {g:?}");
        }
    }
}

#[test]
fn negated_majority_is_at_most() {
    let majority = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    let at_most = negate(&majority);
    for (a, b) in [(2u64, 1u64), (1, 2), (2, 2)] {
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::labelled_cycle(&c);
        let v = Decider::new(&at_most, &g)
            .limit(5_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        assert_eq!(v.decided(), Some(a <= b), "({a},{b})");
    }
}

#[test]
fn xor_of_independent_machines() {
    let majority = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    let parity = compile_rendezvous(&modulo_protocol(vec![1, 0], 2, 0));
    let xor = product(&majority, &parity, Combine::Xor);
    for (a, b) in [(3u64, 1u64), (2, 1), (1, 2)] {
        let c = LabelCount::from_vec(vec![a, b]);
        let g = trees::labelled_binary_tree(&c);
        let expect = (a > b) ^ (a % 2 == 0);
        let v = Decider::new(&xor, &g)
            .limit(5_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        assert_eq!(v.decided(), Some(expect), "({a},{b})");
    }
}
