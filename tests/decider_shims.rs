//! The deprecated-shim equivalence suite: the ten `decide_*` wrappers
//! (five plain in `wam-core`, five certified in `wam-certify`) survive
//! only as `#[deprecated]` delegates to the [`Decider`] / `wam_core::decide`
//! entry points. This is the one in-tree caller they are allowed to keep —
//! a differential test proving every shim is verdict-identical to the
//! builder it forwards to, so downstream code can migrate mechanically.
#![allow(deprecated)]

use weak_async_models::certify::{
    decide_adversarial_round_robin_certified, decide_pseudo_stochastic_certified,
    decide_symmetric_certified, decide_synchronous_certified, decide_system_certified,
    verify_machine, verify_symmetric, verify_system, Decider, VerifyOptions,
};
use weak_async_models::core::{
    decide_adversarial_round_robin, decide_pseudo_stochastic, decide_symmetric, decide_synchronous,
    decide_system, Backend, ExclusiveSystem, ExploreOptions, Machine, Output, Schedule, Symmetry,
};
use weak_async_models::graph::{generators, Graph, LabelCount};

const LIMIT: usize = 200_000;

/// "Some node carries label x1", by flag flooding.
fn flood() -> Machine<bool> {
    Machine::new(
        1,
        |l| l.0 == 1,
        |&s, n| s || n.exists(|&t| t),
        |&s| if s { Output::Accept } else { Output::Reject },
    )
}

/// Never stabilises: every node toggles forever.
fn toggler() -> Machine<bool> {
    Machine::new(
        1,
        |_| false,
        |&s, _| !s,
        |&s| if s { Output::Accept } else { Output::Reject },
    )
}

fn suite() -> Vec<Graph> {
    let mixed = LabelCount::from_vec(vec![3, 1]);
    let uniform = LabelCount::from_vec(vec![4]);
    vec![
        generators::labelled_cycle(&mixed),
        generators::labelled_clique(&mixed),
        generators::labelled_star(&mixed),
        generators::labelled_line(&mixed),
        generators::labelled_cycle(&uniform),
    ]
}

#[test]
fn plain_schedule_shims_match_the_decider() {
    for m in [flood(), toggler()] {
        for g in suite() {
            for (schedule, shim) in [
                (
                    Schedule::PseudoStochastic,
                    decide_pseudo_stochastic(&m, &g, LIMIT).unwrap(),
                ),
                (
                    Schedule::RoundRobin,
                    decide_adversarial_round_robin(&m, &g, LIMIT).unwrap(),
                ),
                (
                    Schedule::Synchronous,
                    decide_synchronous(&m, &g, LIMIT).unwrap(),
                ),
            ] {
                let d = Decider::new(&m, &g)
                    .schedule(schedule)
                    .limit(LIMIT)
                    .decide()
                    .unwrap();
                assert_eq!(shim, d.verdict, "{schedule:?} on {g:?}");
            }
        }
    }
}

#[test]
fn plain_system_shims_match_the_decider() {
    for m in [flood(), toggler()] {
        for g in suite() {
            let sys = ExclusiveSystem::new(&m, &g);
            // `decide_system` is full explicit exploration.
            let explicit = Decider::new(&m, &g)
                .backend(Backend::Explicit)
                .limit(LIMIT)
                .decide()
                .unwrap()
                .verdict;
            assert_eq!(decide_system(&sys, LIMIT).unwrap(), explicit, "{g:?}");
            // `decide_symmetric` maps `Symmetry::Off`/`On` to the
            // `Explicit`/`Quotient` backends; `Auto` must agree with both.
            let quotient = Decider::new(&m, &g)
                .backend(Backend::Quotient)
                .limit(LIMIT)
                .decide()
                .unwrap()
                .verdict;
            assert_eq!(quotient, explicit);
            for (symmetry, expected) in [
                (Symmetry::Off, explicit),
                (Symmetry::On, quotient),
                (Symmetry::Auto, explicit),
            ] {
                let opts = ExploreOptions::with_limit(LIMIT).symmetry(symmetry);
                assert_eq!(
                    decide_symmetric(&sys, opts).unwrap(),
                    expected,
                    "{symmetry:?} on {g:?}"
                );
            }
        }
    }
}

#[test]
fn certified_shims_match_the_decider_and_their_plain_twins() {
    for m in [flood(), toggler()] {
        for g in suite() {
            for (schedule, out) in [
                (
                    Schedule::PseudoStochastic,
                    decide_pseudo_stochastic_certified(&m, &g, LIMIT).unwrap(),
                ),
                (
                    Schedule::RoundRobin,
                    decide_adversarial_round_robin_certified(&m, &g, LIMIT).unwrap(),
                ),
                (
                    Schedule::Synchronous,
                    decide_synchronous_certified(&m, &g, LIMIT).unwrap(),
                ),
            ] {
                let d = Decider::new(&m, &g)
                    .schedule(schedule)
                    .certified(true)
                    .limit(LIMIT)
                    .decide()
                    .unwrap();
                assert_eq!(out.verdict, d.verdict, "{schedule:?} on {g:?}");
                assert_eq!(
                    verify_machine(&m, &g, &out.certificate, &VerifyOptions::default()).unwrap(),
                    out.verdict
                );
                assert_eq!(
                    d.certificate
                        .unwrap()
                        .verify(&m, &g, &VerifyOptions::default())
                        .unwrap(),
                    d.verdict
                );
            }
        }
    }
}

#[test]
fn certified_system_shims_verify_and_match() {
    for m in [flood(), toggler()] {
        for g in suite() {
            let sys = ExclusiveSystem::new(&m, &g);
            let out = decide_system_certified(&sys, LIMIT).unwrap();
            assert_eq!(out.verdict, decide_system(&sys, LIMIT).unwrap());
            assert_eq!(verify_system(&sys, &out.certificate).unwrap(), out.verdict);

            // The symmetric certified shim emits quotient-space witnesses
            // (`Choice` selections + transport) that the symmetric checker
            // replays — coverage the relabelled `Decider` certificates do
            // not exercise.
            let opts = ExploreOptions::with_limit(LIMIT).symmetry(Symmetry::On);
            let sym = decide_symmetric_certified(&sys, opts).unwrap();
            let quotient = Decider::new(&m, &g)
                .backend(Backend::Quotient)
                .limit(LIMIT)
                .decide()
                .unwrap()
                .verdict;
            assert_eq!(sym.verdict, quotient, "{g:?}");
            assert_eq!(
                verify_symmetric(&sys, &sym.certificate, &VerifyOptions::default()).unwrap(),
                sym.verdict
            );
        }
    }
}
