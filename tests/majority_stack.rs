//! The §6.1 headline, end to end: the bounded-degree DAf majority stack
//! decides `x₀ − x₁ ≥ 0` under adversarial schedulers, through every layer.

use weak_async_models::certify::Decider;
use weak_async_models::core::{
    run_machine_until_stable, Config, RandomScheduler, Schedule, Selection, StabilityOptions,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::homogeneous::{big_e, detect_of, DetectState};
use weak_async_models::protocols::{cancel_machine, majority_stack, threshold_stack};
use weak_async_models::sim::{StarvationScheduler, SweepScheduler};

#[test]
fn round_robin_decides_majority_exactly() {
    for (a, b) in [(2u64, 1u64), (1, 2), (2, 2)] {
        let stack = majority_stack(2);
        let flat = stack.flat();
        let g = generators::labelled_line(&LabelCount::from_vec(vec![a, b]));
        let v = Decider::new(&flat, &g)
            .schedule(Schedule::RoundRobin)
            .limit(5_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        assert_eq!(v.decided(), Some(a >= b), "({a},{b})");
    }
}

#[test]
fn stress_schedulers_still_decide() {
    let c = LabelCount::from_vec(vec![3, 2]);
    let g = generators::random_degree_bounded(&c, 3, 2, 5);
    let opts = StabilityOptions::new(4_000_000, 5_000);
    let stack = majority_stack(3);
    let flat = stack.flat();

    let mut sweep = SweepScheduler;
    assert!(run_machine_until_stable(&flat, &g, &mut sweep, opts)
        .verdict
        .is_accepting());

    let mut starve = StarvationScheduler::new(1, 25);
    assert!(run_machine_until_stable(&flat, &g, &mut starve, opts)
        .verdict
        .is_accepting());
}

#[test]
fn general_homogeneous_threshold() {
    // 2·x₀ − 3·x₁ ≥ 0.
    for (a, b) in [(3u64, 2u64), (2, 1), (2, 2)] {
        let stack = threshold_stack(vec![2, -3], 2);
        let flat = stack.flat();
        let g = generators::labelled_line(&LabelCount::from_vec(vec![a, b]));
        let mut sched = RandomScheduler::exclusive(9);
        let r = run_machine_until_stable(
            &flat,
            &g,
            &mut sched,
            StabilityOptions::new(4_000_000, 5_000),
        );
        let expect = 2 * a as i64 - 3 * b as i64 >= 0;
        assert_eq!(r.verdict.decided(), Some(expect), "({a},{b})");
    }
}

#[test]
fn cancel_invariants_hold_on_random_graphs() {
    for seed in 0..5 {
        let k = 3;
        let coeffs = vec![2, -3];
        let m = cancel_machine(coeffs.clone(), k);
        let c = LabelCount::from_vec(vec![4, 3]);
        let g = generators::random_degree_bounded(&c, k, 4, seed);
        let mut cfg = Config::initial(&m, &g);
        let sum0: i32 = cfg.states().iter().sum();
        let all = Selection::all(&g);
        let e = big_e(&coeffs, k);
        for _ in 0..100 {
            cfg = cfg.successor(&m, &g, &all);
            let sum: i32 = cfg.states().iter().sum();
            assert_eq!(sum, sum0, "seed {seed}");
            assert!(cfg.states().iter().all(|x| x.abs() <= e), "seed {seed}");
        }
    }
}

#[test]
fn verdicts_are_invariant_under_scalar_multiplication() {
    // Corollary 3.3 upper bound, witnessed from the inside: the §6.1 stack
    // (a DAf automaton) gives the same verdict on λ-scaled inputs.
    let base_counts = [(2u64, 1u64), (1, 2)];
    for (a, b) in base_counts {
        let mut verdicts = Vec::new();
        for lambda in [1u64, 2, 3] {
            let stack = majority_stack(3);
            let flat = stack.flat();
            let c = LabelCount::from_vec(vec![a * lambda, b * lambda]);
            let g = generators::random_degree_bounded(&c, 3, 2, 31);
            let mut sched = RandomScheduler::exclusive(13);
            let r = run_machine_until_stable(
                &flat,
                &g,
                &mut sched,
                StabilityOptions::new(6_000_000, 5_000),
            );
            verdicts.push(r.verdict);
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "({a},{b}): {verdicts:?}"
        );
        assert_eq!(verdicts[0].decided(), Some(a >= b));
    }
}

#[test]
fn initial_configuration_is_all_leaders() {
    let stack = majority_stack(2);
    let flat = stack.flat();
    let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 1]));
    let cfg = Config::initial(&flat, &g);
    for s in cfg.states() {
        // Flat state: Phased<HomState>; base() gives (inner, q0).
        let hom = s.base();
        match detect_of(hom) {
            DetectState::Val(x, tag) => {
                assert!(matches!(
                    tag,
                    weak_async_models::protocols::homogeneous::Tag::Leader
                ));
                assert!(x == 1 || x == -1);
            }
            other => panic!("unexpected initial state {other:?}"),
        }
    }
}
