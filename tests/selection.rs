//! Selection-regime spot checks: [16] proves the selection criterion does
//! not affect decision power; here we confirm our runners agree across
//! regimes on consistent machines, and that liberal selections are honest
//! (nonempty, simultaneous evaluation).

use weak_async_models::core::{
    run_machine_until_stable, Config, RandomScheduler, Selection, SelectionRegime,
    StabilityOptions, Verdict,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::exists_label;

#[test]
fn verdicts_agree_across_selection_regimes() {
    for (a, b, expect) in [(3u64, 1u64, true), (4, 0, false)] {
        let m = exists_label(2, 1);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::labelled_cycle(&c);
        for regime in [
            SelectionRegime::Exclusive,
            SelectionRegime::Liberal,
            SelectionRegime::Synchronous,
        ] {
            let mut sched = RandomScheduler::new(regime, 77);
            let r =
                run_machine_until_stable(&m, &g, &mut sched, StabilityOptions::new(200_000, 1_000));
            assert_eq!(
                r.verdict.decided(),
                Some(expect),
                "({a},{b}) under {regime:?}"
            );
        }
    }
}

#[test]
fn liberal_steps_evaluate_simultaneously() {
    // Two flagged ends flooding inward: selecting {1, 2} in one liberal step
    // uses the *pre-step* configuration for both nodes.
    let m = exists_label(2, 1);
    let g = generators::labelled_line(&LabelCount::from_vec(vec![2, 2]));
    // labels: x1 x1 x0 x0 → wait, labelled_line expands label 0 first:
    // nodes 0,1 carry x0 and nodes 2,3 carry x1.
    let c0 = Config::initial(&m, &g);
    assert_eq!(c0.states(), &[1, 1, 2, 2]);
    let c1 = c0.successor(&m, &g, &Selection::from_nodes(vec![1, 2]));
    // Node 1 sees nodes 0 (1) and 2 (2): becomes 3. Node 2 sees 1 (1) and
    // 3 (2): becomes 3. Both used the old configuration.
    assert_eq!(c1.states(), &[1, 3, 3, 2]);
}

#[test]
fn synchronous_regime_and_explicit_all_agree() {
    let m = exists_label(2, 0);
    let g = generators::labelled_cycle(&LabelCount::from_vec(vec![2, 2]));
    let mut sched = RandomScheduler::new(SelectionRegime::Synchronous, 0);
    let r = run_machine_until_stable(&m, &g, &mut sched, StabilityOptions::new(10_000, 100));
    assert_eq!(r.verdict, Verdict::Accepts);
}
