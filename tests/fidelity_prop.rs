//! Property-based simulation-fidelity tests: on random small graphs and
//! random label counts, the Lemma 4.7 and 4.10 compilations agree with
//! their semantic models under the exact pseudo-stochastic decider.

use proptest::prelude::*;
use weak_async_models::core::{decide_pseudo_stochastic, decide_system};
use weak_async_models::extensions::{
    compile_broadcasts, compile_rendezvous, BroadcastSystem, GraphPopulationProtocol,
    MajorityState, PopulationSystem,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::threshold_machine;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    #[test]
    fn broadcast_compilation_agrees_on_random_graphs(
        a in 1u64..3,
        b in 1u64..3,
        seed in 0u64..100,
    ) {
        prop_assume!(a + b >= 3);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, 2, 1, seed);
        let bm = threshold_machine(2, 0, 2);
        let flat = compile_broadcasts(&bm);
        let semantic = decide_system(&BroadcastSystem::new(&bm, &g), 1_000_000).unwrap();
        let compiled = decide_pseudo_stochastic(&flat, &g, 3_000_000).unwrap();
        prop_assert_eq!(semantic, compiled);
    }

    #[test]
    fn rendezvous_compilation_agrees_on_random_graphs(
        a in 1u64..3,
        b in 1u64..3,
        seed in 0u64..100,
    ) {
        prop_assume!(a + b >= 3);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_connected(&c, 0.3, seed);
        let pp = GraphPopulationProtocol::<MajorityState>::majority();
        let flat = compile_rendezvous(&pp);
        let semantic = decide_system(&PopulationSystem::new(&pp, &g), 1_000_000).unwrap();
        let compiled = decide_pseudo_stochastic(&flat, &g, 5_000_000).unwrap();
        prop_assert_eq!(semantic, compiled);
    }
}
