//! Property-based simulation-fidelity tests: on random small graphs and
//! random label counts, the Lemma 4.7 and 4.10 compilations agree with
//! their semantic models under the exact pseudo-stochastic decider.

use proptest::prelude::*;
use weak_async_models::certify::Decider;
use weak_async_models::core::Exploration;
use weak_async_models::extensions::{
    compile_broadcasts, compile_rendezvous, BroadcastSystem, GraphPopulationProtocol,
    MajorityState, PopulationSystem,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::threshold_machine;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    #[test]
    fn broadcast_compilation_agrees_on_random_graphs(
        a in 1u64..3,
        b in 1u64..3,
        seed in 0u64..100,
    ) {
        prop_assume!(a + b >= 3);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, 2, 1, seed);
        let bm = threshold_machine(2, 0, 2);
        let flat = compile_broadcasts(&bm);
        let semantic = Exploration::explore(&BroadcastSystem::new(&bm, &g), 1_000_000).map(|e| e.verdict()).unwrap();
        let compiled = Decider::new(&flat, &g).limit(3_000_000).decide().map(|d| d.verdict).unwrap();
        prop_assert_eq!(semantic, compiled);
    }

    #[test]
    fn rendezvous_compilation_agrees_on_random_graphs(
        a in 1u64..3,
        b in 1u64..3,
        seed in 0u64..100,
    ) {
        prop_assume!(a + b >= 3);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_connected(&c, 0.3, seed);
        let pp = GraphPopulationProtocol::<MajorityState>::majority();
        let flat = compile_rendezvous(&pp);
        let semantic = Exploration::explore(&PopulationSystem::new(&pp, &g), 1_000_000).map(|e| e.verdict()).unwrap();
        let compiled = Decider::new(&flat, &g).limit(5_000_000).decide().map(|d| d.verdict).unwrap();
        prop_assert_eq!(semantic, compiled);
    }
}
