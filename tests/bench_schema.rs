//! Schema checks for `BENCH_explore.json`, `BENCH_serve.json`, and
//! `BENCH_net.json`: the benchmark reports at the repository root must
//! stay parseable and keep the fields that the documentation
//! (EXPERIMENTS.md E13/E16/E20/E21/E22) and downstream tooling read.
//! The parser is a ~60-line hand-rolled recursive descent — the workspace
//! deliberately has no JSON dependency — strict enough to reject the
//! usual hand-editing accidents (trailing commas, unquoted keys,
//! truncated files).

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        assert!(self.i < self.s.len(), "unexpected end of input");
        self.s[self.i]
    }

    fn eat(&mut self, c: u8) {
        assert_eq!(
            self.peek(),
            c,
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(map);
        }
        loop {
            self.ws();
            let key = self.string();
            self.eat(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(map);
                }
                c => panic!("expected ',' or '}}', got {:?}", c as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut out = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(out);
        }
        loop {
            out.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(out);
                }
                c => panic!("expected ',' or ']', got {:?}", c as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            assert!(self.i < self.s.len(), "unterminated string");
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return out;
                }
                b'\\' => {
                    self.i += 1;
                    let e = self.s[self.i];
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.s[self.i..self.i + 4]).expect("hex");
                            self.i += 4;
                            let cp = u32::from_str_radix(hex, 16).expect("hex escape");
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        c => panic!("bad escape {:?}", c as char),
                    }
                }
                _ => {
                    // Copy the full UTF-8 scalar, not byte by byte.
                    let rest = std::str::from_utf8(&self.s[self.i..]).expect("utf-8");
                    let ch = rest.chars().next().expect("char");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("utf-8");
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }

    fn parse(mut self) -> Json {
        let v = self.value();
        self.ws();
        assert_eq!(self.i, self.s.len(), "trailing garbage after JSON value");
        v
    }
}

fn parse(s: &str) -> Json {
    Parser::new(s).parse()
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key:?}")),
            _ => panic!("{key:?} looked up on a non-object"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            _ => panic!("expected a number, got {self:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            _ => panic!("expected a string, got {self:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => panic!("expected an array, got {self:?}"),
        }
    }
}

#[test]
fn bench_explore_json_matches_schema() {
    let raw = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_explore.json"))
        .expect("BENCH_explore.json at the repository root");
    let doc = parse(&raw);

    assert_eq!(doc.get("bench").str(), "state_space");
    doc.get("baseline").str();
    doc.get("engine").str();
    doc.get("timing").str();
    assert!(doc.get("cores").num() >= 1.0);

    let cores = doc.get("cores").num();
    let workloads = doc.get("workloads").arr();
    assert!(!workloads.is_empty(), "engine-timing section is empty");
    for w in workloads {
        assert!(!w.get("workload").str().is_empty());
        for key in [
            "nodes",
            "configs",
            "edges",
            "baseline_ms",
            "sequential_ms",
            "parallel_ms",
            "speedup_sequential_vs_baseline",
            "speedup_parallel_vs_baseline",
            "speedup_parallel_vs_sequential",
        ] {
            assert!(w.get(key).num() > 0.0, "{key} must be positive");
        }
        let phases = w.get("phases");
        for key in ["explore_ms", "reverse_csr_ms", "fixpoint_ms", "verdict_ms"] {
            assert!(phases.get(key).num() >= 0.0, "phases.{key} must be present");
        }
        // Exploration dominates the end-to-end decision on every workload;
        // the transpose and fixpoints are the cheap tail.
        assert!(
            phases.get("explore_ms").num()
                >= phases
                    .get("reverse_csr_ms")
                    .num()
                    .max(phases.get("fixpoint_ms").num())
                    / 10.0,
            "phase breakdown looks inverted"
        );
        assert!(matches!(
            w.get("verdict").str(),
            "accepts" | "rejects" | "no consensus" | "inconsistent"
        ));
    }
    // The parallel-vs-sequential pin is core-gated: on a multi-core runner
    // the two largest workloads must show real speedup; on a single core
    // the same threshold would be physically impossible (the "parallel"
    // configuration resolves to one worker plus gating overhead), so the
    // pin degrades to a no-regression floor.
    let mut by_configs: Vec<&Json> = workloads.iter().collect();
    by_configs.sort_by(|a, b| b.get("configs").num().total_cmp(&a.get("configs").num()));
    let floor = if cores >= 2.0 { 1.2 } else { 0.85 };
    for w in by_configs.iter().take(2) {
        let s = w.get("speedup_parallel_vs_sequential").num();
        assert!(
            s >= floor,
            "parallel speedup {s:.2} below the {floor} floor ({} cores) on {:?}",
            cores,
            w.get("workload").str()
        );
    }

    // §3a.7: the dense successor kernel. Every row compares the memoized
    // δ-table kernel against the generic engine on the same workload, both
    // sequential, explore phase only — the bench asserts verdict and
    // reachable-count equality on every repetition before writing a row.
    // A no-regression floor holds on all rows; the flagship Lemma-4.10
    // majority workload must hold the tentpole's 2x.
    let kernel = doc.get("kernel");
    kernel.get("note").str();
    let kernel_workloads = kernel.get("workloads").arr();
    assert!(!kernel_workloads.is_empty(), "kernel section is empty");
    let mut majority_speedup = None;
    for w in kernel_workloads {
        assert!(!w.get("workload").str().is_empty());
        for key in [
            "nodes",
            "configs",
            "generic_explore_ms",
            "kernel_explore_ms",
            "speedup",
            "memory_bytes",
            "delta_entries",
            "states",
            "bits",
        ] {
            assert!(w.get(key).num() > 0.0, "{key} must be positive");
        }
        for key in ["sigs", "restarts"] {
            assert!(w.get(key).num() >= 0.0, "{key} must be present");
        }
        assert!(matches!(
            w.get("verdict").str(),
            "accepts" | "rejects" | "no consensus" | "inconsistent"
        ));
        // Interned ids are u16: the packed rows could not hold more.
        assert!(w.get("states").num() <= 65535.0);
        let hit_rate = w.get("delta_hit_rate").num();
        assert!(
            (0.0..=1.0).contains(&hit_rate),
            "delta_hit_rate must be a fraction, got {hit_rate}"
        );
        // Memoization is the mechanism: on these reachable spaces almost
        // every configuration expansion replays an already-computed row.
        assert!(hit_rate >= 0.5, "delta hit rate {hit_rate:.3} below 0.5");
        let s = w.get("speedup").num();
        assert!(
            s >= 0.85,
            "kernel slower than the generic engine ({s:.2}x) on {:?}",
            w.get("workload").str()
        );
        if w.get("workload").str() == "majority via Lemma 4.10 cycle" {
            majority_speedup = Some(s);
        }
    }
    let majority_speedup =
        majority_speedup.expect("the Lemma 4.10 majority-cycle kernel row must be present");
    assert!(
        majority_speedup >= 2.0,
        "flagship kernel speedup fell below 2x: {majority_speedup:.2}"
    );

    let symmetry = doc.get("symmetry");
    assert!(symmetry.get("group_cap").num() >= 1.0);
    symmetry.get("note").str();
    let sym_workloads = symmetry.get("workloads").arr();
    assert!(!sym_workloads.is_empty(), "symmetry section is empty");
    let mut max_reduction = 0.0f64;
    for w in sym_workloads {
        assert!(!w.get("workload").str().is_empty());
        for key in [
            "nodes",
            "aut_order",
            "configs_full",
            "configs_quotient",
            "reduction",
            "full_ms",
            "quotient_ms",
            "speedup",
        ] {
            assert!(w.get(key).num() > 0.0, "{key} must be positive");
        }
        // The quotient is a quotient: never more configurations than the
        // full space, and the orbit count divides out at most |Aut(G)|.
        let full = w.get("configs_full").num();
        let quot = w.get("configs_quotient").num();
        assert!(quot <= full, "quotient larger than full space");
        assert!(full / quot <= w.get("aut_order").num() + 1e-9);
        max_reduction = max_reduction.max(full / quot);
    }
    assert!(
        max_reduction >= 5.0,
        "the report must demonstrate a >= 5x reduction on some workload"
    );

    let certificates = doc.get("certificates");
    certificates.get("note").str();
    let cert_workloads = certificates.get("workloads").arr();
    assert!(!cert_workloads.is_empty(), "certificates section is empty");
    let mut any_transported = false;
    for w in cert_workloads {
        assert!(!w.get("workload").str().is_empty());
        assert!(matches!(
            w.get("verdict").str(),
            "accepts" | "rejects" | "no consensus" | "inconsistent"
        ));
        assert!(matches!(
            w.get("kind").str(),
            "stable" | "inconsistent" | "no-consensus" | "lasso"
        ));
        any_transported |= matches!(w.get("transported"), Json::Bool(true));
        for key in ["nodes", "cert_configs", "json_bytes"] {
            assert!(w.get(key).num() >= 1.0, "{key} must be at least 1");
        }
        for key in ["plain_ms", "certified_ms", "verify_ms", "emission_overhead"] {
            assert!(w.get(key).num() > 0.0, "{key} must be positive");
        }
        // Verification re-executes only the certificate's configurations,
        // never the whole space: it must not dwarf the certified decision.
        assert!(
            w.get("verify_ms").num() <= w.get("certified_ms").num(),
            "verification slower than emitting the certificate"
        );
    }
    assert!(
        any_transported,
        "the report must include a quotient-emitted (transported) certificate"
    );

    // E18: the counter-abstracted backend section. Every row must carry
    // its small-instance cross-validation, the three graph families must
    // all appear at >= 10^3 nodes, at least three distinct predicates must
    // be decided, and something must reach 10^4 nodes.
    let counter = doc.get("counter");
    counter.get("note").str();
    let counter_workloads = counter.get("workloads").arr();
    assert!(!counter_workloads.is_empty(), "counter section is empty");
    let mut families = std::collections::BTreeSet::new();
    let mut predicates = std::collections::BTreeSet::new();
    let mut max_nodes = 0.0f64;
    for w in counter_workloads {
        assert!(!w.get("workload").str().is_empty());
        assert!(matches!(
            w.get("backend").str(),
            "counter" | "ring" | "counter-population"
        ));
        assert!(w.get("nodes").num() >= 1000.0, "counter rows start at 10^3");
        assert!(w.get("configs").num() >= 1.0);
        assert!(w.get("explore_ms").num() > 0.0);
        // The abstraction is the point: orders of magnitude fewer
        // configurations than nodes would ever allow explicitly.
        assert!(w.get("configs").num() < 2f64.powf(w.get("nodes").num()));
        for key in ["verdict", "small_verdict"] {
            assert!(matches!(
                w.get(key).str(),
                "accepts" | "rejects" | "no consensus" | "inconsistent"
            ));
        }
        // The bench asserts verdict equality against the explicit engine
        // at small n before writing the row; the report must preserve it.
        assert_eq!(
            w.get("verdict").str(),
            w.get("small_verdict").str(),
            "a counter verdict diverged from its small-n cross-check"
        );
        let small = w.get("small_nodes").num();
        assert!(small >= 3.0 && small < w.get("nodes").num());
        families.insert(w.get("family").str().to_string());
        predicates.insert(w.get("predicate").str().to_string());
        max_nodes = max_nodes.max(w.get("nodes").num());
    }
    for family in ["cycle", "clique", "star"] {
        assert!(
            families.contains(family),
            "counter section must cover the {family} family"
        );
    }
    assert!(
        predicates.len() >= 3,
        "counter section must decide at least three distinct predicates, got {predicates:?}"
    );
    assert!(
        max_nodes >= 10_000.0,
        "counter section must reach 10^4 nodes"
    );

    // E19: the spill section. Every row is a space the decider refused at
    // its default limit, decided twice at a raised limit — in memory and
    // under a byte budget that actually pushed edge segments to disk — with
    // the bench asserting verdict equality before writing the row.
    let spill = doc.get("spill");
    spill.get("note").str();
    let spill_workloads = spill.get("workloads").arr();
    assert!(!spill_workloads.is_empty(), "spill section is empty");
    for w in spill_workloads {
        assert!(!w.get("workload").str().is_empty());
        assert_eq!(
            w.get("refused_at_default_limit"),
            &Json::Bool(true),
            "spill rows must document the refusal they fix"
        );
        assert!(
            w.get("configs").num() > w.get("default_limit").num(),
            "a spill row must exceed the default limit it was refused at"
        );
        assert!(w.get("configs").num() <= w.get("raised_limit").num());
        assert!(w.get("memory_budget_bytes").num() > 0.0);
        assert!(
            w.get("spilled_bytes").num() > w.get("memory_budget_bytes").num(),
            "the edge stream must genuinely outgrow the budget"
        );
        for key in ["edges", "in_memory_ms", "spilled_ms", "slowdown"] {
            assert!(w.get(key).num() > 0.0, "{key} must be positive");
        }
        assert!(matches!(
            w.get("verdict").str(),
            "accepts" | "rejects" | "no consensus" | "inconsistent"
        ));
    }
}

#[test]
fn bench_serve_json_matches_schema() {
    let raw = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json"))
        .expect("BENCH_serve.json at the repository root");
    let doc = parse(&raw);

    assert_eq!(doc.get("bench").str(), "serve_traffic");
    doc.get("note").str();
    for key in ["workers", "admission", "clients"] {
        assert!(doc.get(key).num() >= 1.0, "{key} must be at least 1");
    }

    // Traffic accounting: the steady phase is a subset of the total, and
    // the closed loop must have pushed real volume through the service.
    let requests = doc.get("requests").num();
    let steady = doc.get("steady_requests").num();
    assert!(steady >= 1.0 && steady <= requests);
    assert!(doc.get("steady_elapsed_ms").num() > 0.0);
    assert!(doc.get("requests_per_sec").num() > 0.0);

    // Latency percentiles are steady-phase only and must be ordered.
    let p50 = doc.get("p50_us").num();
    let p99 = doc.get("p99_us").num();
    assert!(p50 > 0.0, "p50 must be positive");
    assert!(p99 >= p50, "p99 below p50");

    // The acceptance pins of the tentpole: a skewed workload keeps the
    // sharded memo hot, concurrent duplicates join in-flight decisions,
    // and admission control sheds (rather than queues) the overload burst.
    assert!(
        doc.get("cache_hit_rate").num() >= 0.5,
        "cache hit rate below 0.5"
    );
    let coalesced_fraction = doc.get("coalesced_fraction").num();
    assert!(
        coalesced_fraction > 0.0 && coalesced_fraction <= 1.0,
        "coalesced fraction must be in (0, 1]"
    );
    assert!(doc.get("cache_hits").num() >= 1.0);
    assert!(doc.get("coalesced").num() >= 1.0);
    assert!(doc.get("rejected_overload").num() >= 1.0);
    assert!(doc.get("rejected_deadline").num() >= 0.0);
    assert!(doc.get("degraded").num() >= 1.0);

    // Every decision is cached under its canonical key: the distinct-key
    // count bounds how many decisions may ever have run.
    let decided = doc.get("decided").num();
    let distinct = doc.get("distinct_keys").num();
    assert!(decided >= 1.0);
    assert!(distinct >= 1.0 && distinct <= decided);
    assert!(
        decided < requests,
        "the cache must absorb most of the workload"
    );
}

#[test]
fn bench_net_json_matches_schema() {
    let raw = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_net.json"))
        .expect("BENCH_net.json at the repository root");
    let doc = parse(&raw);

    assert_eq!(doc.get("bench").str(), "net_chaos");
    doc.get("note").str();
    assert!(doc.get("workers").num() >= 1.0);
    assert!(doc.get("seed").num() >= 0.0);

    let verdicts = ["accepts", "rejects", "no consensus", "inconsistent"];
    let check_row = |w: &Json| {
        assert!(!w.get("workload").str().is_empty());
        assert!(!w.get("machine").str().is_empty());
        assert!(w.get("nodes").num() >= 3.0, "the model needs >= 3 nodes");
        assert!(w.get("seed").num() >= 0.0);
        assert!(!w.get("plan").str().is_empty());
        assert!(verdicts.contains(&w.get("expected").str()));
        assert!(verdicts.contains(&w.get("emergent").str()));
        // Every row is a determinism check: the bench reruns the seed and
        // asserts digest equality before writing.
        assert_eq!(w.get("replayed"), &Json::Bool(true));
        let digest = w.get("digest").str();
        assert_eq!(digest.len(), 16, "FNV-1a digest is 16 hex digits");
        assert!(digest.bytes().all(|b| b.is_ascii_hexdigit()));
        assert!(w.get("rounds").num() >= 1.0);
        assert!(w.get("delivered").num() >= 1.0);
        for key in ["dropped", "duplicated", "starved"] {
            assert!(w.get(key).num() >= 0.0, "{key} must be present");
        }
        assert!(w.get("elapsed_ms").num() > 0.0);
        assert!(w.get("activations_per_sec").num() > 0.0);
    };

    // E22 agreement matrix: under fairness-preserving plans the emergent
    // verdict equals the exact one on every row, at least four distinct
    // Figure-1 machines appear, and both non-trivial verdicts show up.
    let agreement = doc.get("agreement").arr();
    assert!(agreement.len() >= 4, "agreement matrix too small");
    let mut machines = std::collections::BTreeSet::new();
    let mut seen_verdicts = std::collections::BTreeSet::new();
    for w in agreement {
        check_row(w);
        assert_eq!(w.get("fairness_preserved"), &Json::Bool(true));
        assert_eq!(w.get("agreed"), &Json::Bool(true));
        assert_eq!(
            w.get("expected").str(),
            w.get("emergent").str(),
            "a fair-plan row diverged"
        );
        let stabilised = w.get("stabilised_at").num();
        assert!(stabilised >= 1.0 && stabilised <= w.get("rounds").num());
        machines.insert(w.get("machine").str().to_string());
        seen_verdicts.insert(w.get("expected").str().to_string());
    }
    assert!(
        machines.len() >= 4,
        "agreement must cover >= 4 Figure-1 machines, got {machines:?}"
    );
    assert!(seen_verdicts.contains("accepts") && seen_verdicts.contains("rejects"));

    // The documented divergence: an unfair plan (permanent partition) run
    // on purpose, recorded as data — expected and emergent must differ
    // and the isolated region must have starved.
    let divergence = doc.get("divergence").arr();
    assert!(!divergence.is_empty(), "divergence section is empty");
    for w in divergence {
        check_row(w);
        assert_eq!(w.get("fairness_preserved"), &Json::Bool(false));
        assert_eq!(w.get("agreed"), &Json::Bool(false));
        assert_ne!(w.get("expected").str(), w.get("emergent").str());
        assert!(w.get("starved").num() >= 1.0, "the cut region must starve");
        assert!(
            w.get("plan").str().contains("partition"),
            "the divergence row must name its fault"
        );
    }
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "{\"a\": 1,}",
        "{\"a\" 1}",
        "[1, 2",
        "{\"a\": 1} trailing",
        "\"unterminated",
    ] {
        let caught = std::panic::catch_unwind(|| parse(bad));
        assert!(caught.is_err(), "parser accepted malformed input {bad:?}");
    }
}

#[test]
fn parser_handles_escapes_and_unicode() {
    let v = parse(r#"{"k": "x₀ \"q\" \\ ₀", "n": -1.5e2, "b": [true, false, null]}"#);
    assert_eq!(v.get("k").str(), "x₀ \"q\" \\ ₀");
    assert_eq!(v.get("n").num(), -150.0);
    assert_eq!(v.get("b").arr().len(), 3);
    assert_eq!(v.get("b").arr()[2], Json::Null);
}
