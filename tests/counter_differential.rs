//! Differential tests for the counter-abstracted exploration backend: on
//! random table machines and twin-compressible graph families (cliques,
//! stars, complete bipartite graphs), exploring dense count vectors over
//! the twin partition must yield the same [`Verdict`] as exploring the
//! explicit node space — and on cycles the necklace (`RingSystem`)
//! abstraction must do the same. This is the empirical half of the
//! soundness argument in `wam-core::counter`.
//!
//! A separate regression pins the counter abstraction against an
//! independent implementation of the same idea: on uniform-label stars the
//! reachable counter space must reproduce the configuration count of
//! `wam-analysis::stars` (centre state + leaf multiset) *exactly*, not
//! just verdict-wise.

use proptest::prelude::*;
use weak_async_models::analysis::StarSystem;
use weak_async_models::core::{
    Backend, CounterSystem, ExclusiveSystem, Exploration, ExploreError, ExploreOptions, Machine,
    Output, ResolvedBackend, RingSystem, Schedule,
};
use weak_async_models::graph::{generators, trees, Graph, Label, LabelCount};

const STATES: u8 = 3;
const LIMIT: usize = 500_000;

/// A table-driven machine over states `0..STATES` with counting bound 1
/// (as in `symmetry_differential.rs`): every table is a well-formed
/// machine, so sampling tables samples machines.
fn table_machine(init: [u8; 2], table: Vec<u8>, outs: [u8; STATES as usize]) -> Machine<u8> {
    assert_eq!(table.len(), (STATES as usize) << STATES);
    Machine::new(
        1,
        move |l: Label| init[l.0 as usize % 2] % STATES,
        move |&s: &u8, n| {
            let mask: usize = (0..STATES)
                .filter(|q| n.exists(|&t| t == *q))
                .map(|q| 1usize << q)
                .sum();
            table[((s as usize) << STATES) | mask] % STATES
        },
        move |&s| match outs[s as usize % STATES as usize] % 3 {
            0 => Output::Reject,
            1 => Output::Accept,
            _ => Output::Neutral,
        },
    )
}

fn explicit_verdict(m: &Machine<u8>, g: &Graph) -> weak_async_models::core::Verdict {
    let sys = ExclusiveSystem::new(m, g);
    Exploration::explore(&sys, LIMIT).unwrap().verdict()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Cliques, stars and complete bipartite graphs all have non-trivial
    /// twin partitions, so the counter abstraction applies — and must be
    /// verdict-exact against full node-space exploration. The engine
    /// dispatcher must also route `Backend::Counter` to the counter
    /// representation on these graphs.
    #[test]
    fn counter_matches_explicit_on_twin_graphs(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        a in 1u64..4,
        b in 1u64..4,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let c = LabelCount::from_vec(vec![a, b]);
        for g in [
            generators::labelled_clique(&c),
            generators::labelled_star(&c),
            trees::labelled_complete_bipartite(&c, a as usize),
        ] {
            let expected = explicit_verdict(&m, &g);
            match CounterSystem::new(&m, &g) {
                Ok(counter) => {
                    let v = Exploration::explore(&counter, LIMIT).unwrap().verdict();
                    prop_assert_eq!(v, expected, "counter vs explicit on {:?}", g);
                    let (dv, stats) = weak_async_models::core::decide(
                        &m,
                        &g,
                        Schedule::PseudoStochastic,
                        Backend::Counter,
                        ExploreOptions::with_limit(LIMIT),
                    )
                    .unwrap();
                    prop_assert_eq!(dv, expected);
                    prop_assert_eq!(stats.backend, ResolvedBackend::Counter);
                }
                Err(_) => {
                    // Degenerate labellings (e.g. a 3-node star with mixed
                    // leaf labels) have all-singleton twin partitions: the
                    // abstraction is rejected, and the dispatcher must
                    // refuse `Backend::Counter` rather than guess.
                    let r = weak_async_models::core::decide(
                        &m,
                        &g,
                        Schedule::PseudoStochastic,
                        Backend::Counter,
                        ExploreOptions::with_limit(LIMIT),
                    );
                    prop_assert!(
                        matches!(r, Err(ExploreError::Unsupported { .. })),
                        "expected Unsupported, got {:?}",
                        r
                    );
                }
            }
        }
    }

    /// On cycles the necklace abstraction (rotation + reflection canonical
    /// run-length encodings) is exact for *any* labelling, including
    /// twin-free ones where the counter abstraction does not apply —
    /// `Backend::Counter` falls through to the ring representation there.
    #[test]
    fn ring_matches_explicit_on_cycles(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        a in 1u64..5,
        b in 1u64..5,
    ) {
        prop_assume!(a + b >= 3);
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let expected = explicit_verdict(&m, &g);
        let ring = RingSystem::new(&m, &g).expect("a labelled cycle is a cycle");
        let v = Exploration::explore(&ring, LIMIT).unwrap().verdict();
        prop_assert_eq!(v, expected, "ring vs explicit on C_{}", a + b);
        let (dv, stats) = weak_async_models::core::decide(
            &m,
            &g,
            Schedule::PseudoStochastic,
            Backend::Counter,
            ExploreOptions::with_limit(LIMIT),
        )
        .unwrap();
        prop_assert_eq!(dv, expected);
        prop_assert!(
            matches!(stats.backend, ResolvedBackend::Counter | ResolvedBackend::Ring),
            "Backend::Counter on a cycle must resolve to an abstraction, got {:?}",
            stats.backend
        );
    }

    /// Independent-implementation cross-check: on a uniform-label star the
    /// twin partition is {centre} ∪ {leaves}, so counter configurations
    /// (cell, state, count) and `wam-analysis` star configurations
    /// (centre state + leaf multiset) are in bijection. The two
    /// explorations must agree on the *exact* number of reachable
    /// configurations, not just the verdict.
    #[test]
    fn counter_counts_equal_star_reduction_on_uniform_stars(
        init in (0u8..STATES, 0u8..STATES),
        table in prop::collection::vec(0u8..STATES, (STATES as usize) << STATES..((STATES as usize) << STATES) + 1),
        outs in (0u8..3, 0u8..3, 0u8..3),
        n in 4u64..9,
    ) {
        let m = table_machine([init.0, init.1], table, [outs.0, outs.1, outs.2]);
        let g = generators::labelled_star(&LabelCount::from_vec(vec![n]));
        let counter = CounterSystem::new(&m, &g).expect("uniform star leaves are twins");
        let ce = Exploration::explore(&counter, LIMIT).unwrap();

        let star = StarSystem::new(&m, Label(0), vec![(Label(0), n - 1)]);
        let se = Exploration::explore(&star, LIMIT).unwrap();

        prop_assert_eq!(
            ce.len(),
            se.len(),
            "counter explored {} configurations, star reduction {}",
            ce.len(),
            se.len()
        );
        prop_assert_eq!(ce.verdict(), se.verdict());
        prop_assert_eq!(ce.verdict(), explicit_verdict(&m, &g));
    }
}
