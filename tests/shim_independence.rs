//! Textual independence of the deprecated `decide_*` shims: the ten
//! free-function deciders kept for backward compatibility may be
//! *defined* (and re-exported) but no longer *used* anywhere in the
//! tree except `tests/decider_shims.rs`, the one test that pins their
//! behaviour against the [`Decider`](wam_certify::Decider) builder.
//!
//! The check is a word-boundary scan of every `.rs` file in the
//! repository, so a new caller fails this test even if it compiles
//! cleanly against the deprecated functions.

use std::path::{Path, PathBuf};

/// The deprecated shims: five plain deciders in `wam-core`, five
/// certified counterparts in `wam-certify`.
const SHIMS: [&str; 10] = [
    "decide_system",
    "decide_pseudo_stochastic",
    "decide_adversarial_round_robin",
    "decide_synchronous",
    "decide_symmetric",
    "decide_system_certified",
    "decide_pseudo_stochastic_certified",
    "decide_adversarial_round_robin_certified",
    "decide_synchronous_certified",
    "decide_symmetric_certified",
];

/// Files allowed to mention a shim name: the definition sites, the two
/// `lib.rs` files that re-export them (removing the re-exports is a
/// semver question for a later major bump), the compatibility test that
/// is their one sanctioned caller, the verifier-independence test that
/// lists them as forbidden strings, and this file.
const ALLOWED: [&str; 8] = [
    "crates/core/src/explore.rs",
    "crates/core/src/symmetry.rs",
    "crates/core/src/lib.rs",
    "crates/certify/src/emit.rs",
    "crates/certify/src/lib.rs",
    "crates/certify/tests/independence.rs",
    "tests/decider_shims.rs",
    "tests/shim_independence.rs",
];

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whether `text` contains `word` delimited on both sides by
/// non-identifier characters (so `decide_system` does not match inside
/// `decide_system_certified`, and `decide_symmetric` does not match
/// inside `decide_symmetric_stats`).
fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable directory") {
        let entry = entry.expect("directory entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` holds build products (including expanded macro
            // sources); hidden directories hold VCS state.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn deprecated_shims_have_no_callers_outside_the_compat_test() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    assert!(
        files.len() > 50,
        "the scan found only {} .rs files — is the walk broken?",
        files.len()
    );

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .expect("path under the repository root")
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("unreadable source file {rel}: {e}"));
        for shim in SHIMS {
            if contains_word(&text, shim) {
                violations.push(format!("{rel} mentions {shim}"));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated shims are referenced outside their sanctioned files \
         (migrate the caller to the Decider builder):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn the_sanctioned_files_still_exist() {
    // If a definition file is renamed, the allowlist must move with it —
    // otherwise the main scan silently stops covering the definitions.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in ALLOWED {
        assert!(
            root.join(rel).is_file(),
            "allowlisted file {rel} is missing; update the allowlist"
        );
    }
}

#[test]
fn word_boundary_matching_is_exact() {
    assert!(contains_word("x = decide_system(&s, o);", "decide_system"));
    assert!(contains_word("decide_system", "decide_system"));
    assert!(!contains_word(
        "decide_system_certified(x)",
        "decide_system"
    ));
    assert!(!contains_word("my_decide_system", "decide_system"));
    assert!(!contains_word("decide_symmetric_stats", "decide_symmetric"));
    assert!(contains_word("(decide_symmetric)", "decide_symmetric"));
}
