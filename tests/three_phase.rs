//! Appendix B.1 discipline on the compiled machines: both the broadcast
//! compiler (Lemma 4.7) and the absence compiler (Lemma 4.9) must produce
//! three-phase automata in the sense of Definition B.2, with Lemma B.5's
//! adjacent phase-count bound holding along concrete fair runs.

use std::collections::BTreeSet;
use weak_async_models::core::{Machine, Output, RandomScheduler, RoundRobinScheduler};
use weak_async_models::extensions::{
    check_phase_discipline, compile_absence, compile_broadcasts, AbsenceMachine, AbsencePhased,
    Phased,
};
use weak_async_models::graph::{generators, Label, LabelCount};
use weak_async_models::protocols::threshold_machine;

#[test]
fn broadcast_compiler_discipline_on_many_graphs() {
    let flat = compile_broadcasts(&threshold_machine(2, 0, 2));
    let phase = |p: &Phased<weak_async_models::protocols::CutoffState>| p.phase();
    for c in [
        LabelCount::from_vec(vec![3, 1]),
        LabelCount::from_vec(vec![2, 2]),
    ] {
        for g in [
            generators::labelled_cycle(&c),
            generators::labelled_star(&c),
            weak_async_models::graph::trees::labelled_binary_tree(&c),
        ] {
            let mut sched = RoundRobinScheduler;
            let report = check_phase_discipline(&flat, &g, &mut sched, &phase, 3_000);
            assert!(report.phase_changes > 0, "{g:?}");
        }
    }
}

#[test]
fn absence_compiler_discipline() {
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum D {
        A,
        B,
        Acc,
        Rej,
    }
    let base = Machine::new(
        1,
        |l: Label| if l.0 == 0 { D::A } else { D::B },
        |&s, _| s,
        |&s| match s {
            D::A | D::Acc => Output::Accept,
            D::B | D::Rej => Output::Reject,
        },
    );
    let am = AbsenceMachine::new(
        base,
        |&s| s == D::A,
        |_, supp: &BTreeSet<D>| if supp.contains(&D::B) { D::Rej } else { D::Acc },
    );
    let phase = |p: &AbsencePhased<D>| p.phase();
    for c in [
        LabelCount::from_vec(vec![4, 0]),
        LabelCount::from_vec(vec![3, 1]),
    ] {
        for g in [
            generators::labelled_cycle(&c),
            generators::labelled_line(&c),
        ] {
            let compiled = compile_absence(&am, g.max_degree());
            let mut sched = RandomScheduler::exclusive(7);
            let report = check_phase_discipline(&compiled, &g, &mut sched, &phase, 5_000);
            // On all-A inputs the detection wave must run at least one full
            // round; with a B present the first wave still starts.
            assert!(report.phase_changes > 0, "{c} on {g:?}");
            assert!(report.all_phase0_configs >= 1);
        }
    }
}
