//! Differential test for the unified run-time layer: the generic
//! `run_until_stable` driver must agree *exactly* — verdict, step count,
//! stabilisation point and final configuration — with the four
//! family-specific runner loops it replaced. The `reference` module holds
//! verbatim copies of the removed loops; any drift in the generic driver's
//! RNG stream or clock handling shows up as a mismatch here.
//!
//! A second layer of checks compares the statistical verdicts with the exact
//! deciders on the same systems: whenever the sampled run decides, it must
//! decide the same way as exhaustive exploration.

use std::collections::BTreeSet;
use std::sync::Arc;
use weak_async_models::core::{
    run_until_stable, Config, Exploration, Machine, Output, RunReport, StabilityClock,
    StabilityOptions, State, TransitionSystem, Verdict,
};
use weak_async_models::extensions::{
    AbsenceMachine, AbsenceSystem, BroadcastMachine, BroadcastSystem, GraphPopulationProtocol,
    MajorityState, PopulationSystem, ResponseFn, StrongBroadcastProtocol, StrongBroadcastSystem,
};
use weak_async_models::graph::{generators, Graph, Label, LabelCount, NodeId};

/// Verbatim copies of the four family-specific runner loops that the
/// generic `wam_core::run_until_stable` driver replaced. Kept here, and
/// only here, as the reference semantics.
mod reference {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    pub fn run_broadcast_until_stable<S: State>(
        bm: &BroadcastMachine<S>,
        graph: &Graph,
        broadcast_prob: f64,
        seed: u64,
        opts: StabilityOptions,
    ) -> RunReport<Config<S>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = Config::initial(bm.machine(), graph);
        let outputs: Vec<Output> = config.states().iter().map(|s| bm.output(s)).collect();
        let mut clock = StabilityClock::new(opts, outputs);
        for t in 0..opts.max_steps {
            if let Some((verdict, since)) = clock.verdict(t) {
                return RunReport {
                    verdict,
                    steps: t,
                    stabilised_at: Some(since),
                    final_config: config,
                };
            }
            let initiators: Vec<NodeId> = graph
                .nodes()
                .filter(|&v| bm.initiates(config.state(v)))
                .collect();
            let next = if !initiators.is_empty() && rng.random_bool(broadcast_prob) {
                let mut order = initiators.clone();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.random_range(0..=i));
                }
                let mut set: Vec<NodeId> = Vec::new();
                for v in order {
                    if set.iter().all(|&u| !graph.has_edge(u, v))
                        && (set.is_empty() || rng.random_bool(0.5))
                    {
                        set.push(v);
                    }
                }
                let responses: Vec<ResponseFn<S>> = set
                    .iter()
                    .map(|&v| bm.broadcast(config.state(v)).1)
                    .collect();
                let states: Vec<S> = graph
                    .nodes()
                    .map(|v| {
                        if set.contains(&v) {
                            bm.broadcast(config.state(v)).0
                        } else {
                            let f = &responses[rng.random_range(0..responses.len())];
                            f(config.state(v))
                        }
                    })
                    .collect();
                Config::from_states(states)
            } else {
                let v = rng.random_range(0..graph.node_count());
                if bm.initiates(config.state(v)) {
                    continue;
                }
                let stepped = config.stepped_state(bm.machine(), graph, v);
                let mut states = config.states().to_vec();
                states[v] = stepped;
                Config::from_states(states)
            };
            let changed = next != config;
            if changed {
                config = next;
            }
            let outputs: Vec<Output> = config.states().iter().map(|s| bm.output(s)).collect();
            clock.record(t, changed, &outputs);
        }
        RunReport {
            verdict: Verdict::NoConsensus,
            steps: opts.max_steps,
            stabilised_at: None,
            final_config: config,
        }
    }

    pub fn run_absence_until_stable<S: State>(
        am: &AbsenceMachine<S>,
        graph: &Graph,
        seed: u64,
        opts: StabilityOptions,
    ) -> RunReport<Config<S>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = Config::initial(am.machine(), graph);
        let outputs: Vec<Output> = config.states().iter().map(|s| am.output(s)).collect();
        let mut clock = StabilityClock::new(opts, outputs);
        let mut last_output_change = 0usize;
        for t in 0..opts.max_steps {
            if let Some((verdict, since)) = clock.verdict(t) {
                return RunReport {
                    verdict,
                    steps: t,
                    stabilised_at: Some(since),
                    final_config: config,
                };
            }
            let c1 = am.sync_step(graph, &config);
            let initiators: Vec<NodeId> = graph
                .nodes()
                .filter(|&v| am.initiates(c1.state(v)))
                .collect();
            if initiators.is_empty() {
                let verdict = match config.consensus(am.machine()) {
                    Some(Output::Accept) => Verdict::Accepts,
                    Some(Output::Reject) => Verdict::Rejects,
                    _ => Verdict::NoConsensus,
                };
                return RunReport {
                    verdict,
                    steps: t,
                    stabilised_at: verdict.decided().map(|_| last_output_change),
                    final_config: config,
                };
            }
            let mut observed: Vec<BTreeSet<S>> = vec![BTreeSet::new(); initiators.len()];
            for v in graph.nodes() {
                let i = rng.random_range(0..initiators.len());
                observed[i].insert(c1.state(v).clone());
            }
            for (i, &v) in initiators.iter().enumerate() {
                observed[i].insert(c1.state(v).clone());
            }
            let mut states = c1.states().to_vec();
            for (i, &v) in initiators.iter().enumerate() {
                states[v] = am.detect(c1.state(v), &observed[i]);
            }
            let next = Config::from_states(states);
            let changed = next != config;
            if changed {
                let changed_outputs = next
                    .states()
                    .iter()
                    .zip(config.states())
                    .any(|(a, b)| am.output(a) != am.output(b));
                if changed_outputs {
                    last_output_change = t + 1;
                }
                config = next;
            }
            let outputs: Vec<Output> = config.states().iter().map(|s| am.output(s)).collect();
            clock.record(t, changed, &outputs);
        }
        RunReport {
            verdict: Verdict::NoConsensus,
            steps: opts.max_steps,
            stabilised_at: None,
            final_config: config,
        }
    }

    pub fn run_population_until_stable<S: State>(
        pp: &GraphPopulationProtocol<S>,
        graph: &Graph,
        seed: u64,
        opts: StabilityOptions,
    ) -> RunReport<Config<S>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = graph.edges();
        let mut config = {
            let sys = PopulationSystem::new(pp, graph);
            sys.initial_config()
        };
        let outputs: Vec<Output> = config.states().iter().map(|s| pp.output(s)).collect();
        let mut clock = StabilityClock::new(opts, outputs);
        for t in 0..opts.max_steps {
            if let Some((verdict, since)) = clock.verdict(t) {
                return RunReport {
                    verdict,
                    steps: t,
                    stabilised_at: Some(since),
                    final_config: config,
                };
            }
            let &(u, v) = &edges[rng.random_range(0..edges.len())];
            let (a, b) = if rng.random_bool(0.5) { (u, v) } else { (v, u) };
            let (pa, pb) = pp.interact(config.state(a), config.state(b));
            let changed = pa != *config.state(a) || pb != *config.state(b);
            if changed {
                let mut states = config.states().to_vec();
                states[a] = pa;
                states[b] = pb;
                config = Config::from_states(states);
            }
            let outputs: Vec<Output> = config.states().iter().map(|s| pp.output(s)).collect();
            clock.record(t, changed, &outputs);
        }
        RunReport {
            verdict: Verdict::NoConsensus,
            steps: opts.max_steps,
            stabilised_at: None,
            final_config: config,
        }
    }

    pub fn run_strong_broadcast_until_stable<S: State>(
        sb: &StrongBroadcastProtocol<S>,
        graph: &Graph,
        seed: u64,
        opts: StabilityOptions,
    ) -> RunReport<Config<S>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sys = StrongBroadcastSystem::new(sb, graph);
        let mut config = sys.initial_config();
        let outputs: Vec<Output> = config.states().iter().map(|s| sb.output(s)).collect();
        let mut clock = StabilityClock::new(opts, outputs);
        for t in 0..opts.max_steps {
            if let Some((verdict, since)) = clock.verdict(t) {
                return RunReport {
                    verdict,
                    steps: t,
                    stabilised_at: Some(since),
                    final_config: config,
                };
            }
            let v = rng.random_range(0..graph.node_count());
            let (q2, f) = sb.broadcast(config.state(v));
            let states: Vec<S> = graph
                .nodes()
                .map(|u| {
                    if u == v {
                        q2.clone()
                    } else {
                        f(config.state(u))
                    }
                })
                .collect();
            let next = Config::from_states(states);
            let changed = next != config;
            if changed {
                config = next;
            }
            let outputs: Vec<Output> = config.states().iter().map(|s| sb.output(s)).collect();
            clock.record(t, changed, &outputs);
        }
        RunReport {
            verdict: Verdict::NoConsensus,
            steps: opts.max_steps,
            stabilised_at: None,
            final_config: config,
        }
    }
}

/// The Lemma C.5 threshold broadcast machine `x₀ ≥ k` (same construction as
/// the unit tests in `wam-extensions`).
fn broadcast_threshold(k: u32) -> BroadcastMachine<u32> {
    let machine = Machine::new(
        1,
        move |l: Label| if l.0 == 0 { 1 } else { 0 },
        |&s: &u32, _| s,
        move |&s| {
            if s == k {
                Output::Accept
            } else {
                Output::Reject
            }
        },
    );
    BroadcastMachine::new(
        machine,
        move |&s| s >= 1,
        move |&s| {
            if s == k {
                (k, Arc::new(move |_: &u32| k) as ResponseFn<u32>)
            } else {
                (
                    s,
                    Arc::new(move |&r: &u32| if r == s && r < k { r + 1 } else { r })
                        as ResponseFn<u32>,
                )
            }
        },
    )
}

/// A one-shot absence detector: `A`-agents initiate once and accept iff no
/// `B` appears in their observed support.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum D {
    A,
    B,
    Acc,
    Rej,
}

fn absence_detector() -> AbsenceMachine<D> {
    let machine = Machine::new(
        1,
        |l: Label| if l.0 == 0 { D::A } else { D::B },
        |&s, _| s,
        |&s| match s {
            D::A | D::Acc => Output::Accept,
            D::B | D::Rej => Output::Reject,
        },
    );
    AbsenceMachine::new(
        machine,
        |&s| s == D::A,
        |_, supp| if supp.contains(&D::B) { D::Rej } else { D::Acc },
    )
}

fn graphs() -> Vec<(&'static str, Graph)> {
    let counts = [
        LabelCount::from_vec(vec![3, 0]),
        LabelCount::from_vec(vec![2, 1]),
        LabelCount::from_vec(vec![1, 3]),
        LabelCount::from_vec(vec![3, 2]),
    ];
    let mut out = Vec::new();
    for c in &counts {
        out.push(("cycle", generators::labelled_cycle(c)));
        out.push(("line", generators::labelled_line(c)));
        out.push(("star", generators::labelled_star(c)));
    }
    out
}

fn assert_same<C: PartialEq + std::fmt::Debug>(
    family: &str,
    shape: &str,
    seed: u64,
    old: &RunReport<C>,
    new: &RunReport<C>,
) {
    assert_eq!(
        (old.verdict, old.steps, old.stabilised_at),
        (new.verdict, new.steps, new.stabilised_at),
        "{family} on {shape} (seed {seed}) diverged",
    );
    assert_eq!(
        old.final_config, new.final_config,
        "{family} on {shape} (seed {seed}): final configurations differ",
    );
}

#[test]
fn broadcast_driver_matches_reference_loop() {
    let bm = broadcast_threshold(2);
    let opts = StabilityOptions::new(60_000, 600);
    for (shape, g) in graphs() {
        for seed in 0..6 {
            let old = reference::run_broadcast_until_stable(&bm, &g, 0.3, seed, opts);
            let sys = BroadcastSystem::new(&bm, &g).with_broadcast_prob(0.3);
            let new = run_until_stable(&sys, seed, opts);
            assert_same("broadcast", shape, seed, &old, &new);
        }
    }
}

#[test]
fn absence_driver_matches_reference_loop() {
    let am = absence_detector();
    let opts = StabilityOptions::new(60_000, 600);
    for (shape, g) in graphs() {
        for seed in 0..6 {
            let old = reference::run_absence_until_stable(&am, &g, seed, opts);
            let sys = AbsenceSystem::new(&am, &g);
            let new = run_until_stable(&sys, seed, opts);
            assert_same("absence", shape, seed, &old, &new);
        }
    }
}

#[test]
fn population_driver_matches_reference_loop() {
    let pp = GraphPopulationProtocol::<MajorityState>::majority();
    let opts = StabilityOptions::new(120_000, 600);
    for (shape, g) in graphs() {
        for seed in 0..6 {
            let old = reference::run_population_until_stable(&pp, &g, seed, opts);
            let sys = PopulationSystem::new(&pp, &g);
            let new = run_until_stable(&sys, seed, opts);
            assert_same("population", shape, seed, &old, &new);
        }
    }
}

#[test]
fn strong_broadcast_driver_matches_reference_loop() {
    let sb = weak_async_models::extensions::threshold_protocol(2);
    let opts = StabilityOptions::new(60_000, 600);
    for (shape, g) in graphs() {
        for seed in 0..6 {
            let old = reference::run_strong_broadcast_until_stable(&sb, &g, seed, opts);
            let sys = StrongBroadcastSystem::new(&sb, &g);
            let new = run_until_stable(&sys, seed, opts);
            assert_same("strong-broadcast", shape, seed, &old, &new);
        }
    }
}

/// Whenever a sampled run decides, it must agree with the exact decider on
/// the same transition system.
#[test]
fn sampled_verdicts_agree_with_exact_deciders() {
    let opts = StabilityOptions::new(120_000, 1_000);
    let bm = broadcast_threshold(2);
    let am = absence_detector();
    let pp = GraphPopulationProtocol::<MajorityState>::majority();
    for (shape, g) in graphs() {
        let checks: Vec<(&str, Verdict, Verdict)> = vec![
            (
                "broadcast",
                Exploration::explore(&BroadcastSystem::new(&bm, &g), 2_000_000)
                    .map(|e| e.verdict())
                    .unwrap(),
                run_until_stable(&BroadcastSystem::new(&bm, &g), 11, opts).verdict,
            ),
            (
                "absence",
                Exploration::explore(&AbsenceSystem::new(&am, &g), 2_000_000)
                    .map(|e| e.verdict())
                    .unwrap(),
                run_until_stable(&AbsenceSystem::new(&am, &g), 11, opts).verdict,
            ),
            (
                "population",
                Exploration::explore(&PopulationSystem::new(&pp, &g), 2_000_000)
                    .map(|e| e.verdict())
                    .unwrap(),
                run_until_stable(&PopulationSystem::new(&pp, &g), 11, opts).verdict,
            ),
        ];
        for (family, exact, sampled) in checks {
            if let Some(decided) = sampled.decided() {
                assert_eq!(
                    exact.decided(),
                    Some(decided),
                    "{family} on {shape}: sampled verdict {sampled:?} contradicts exact {exact:?}",
                );
            }
        }
    }
}
