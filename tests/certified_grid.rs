//! **E1, certified:** every verdict of the Figure-1 witness protocols on
//! the small-graph suite is emitted together with a certificate, checked by
//! the independent verifier, round-tripped through JSON and re-verified —
//! including the quotient-active runs, whose certificates carry symmetry
//! transport. The certified sweeps also run through the shared [`VerdictStore`], so
//! repeated isomorphism classes are served with their cached proofs.

use weak_async_models::analysis::{system_fingerprint, Predicate, VerdictStore};
use weak_async_models::certify::{
    certificate_from_json, certificate_to_json, verify_machine, CertifiedVerdict, Decider,
    DecisionCertificate, StateTable, VerifyOptions,
};
use weak_async_models::core::{Backend, Config, Machine, Schedule, State};
use weak_async_models::extensions::{
    compile_broadcasts, compile_rendezvous, GraphPopulationProtocol, MajorityState,
};
use weak_async_models::graph::{generators, Graph, LabelCount};
use weak_async_models::protocols::{cutoff_one_machine, modulo_protocol, threshold_machine};

fn suite(c: &LabelCount) -> Vec<Graph> {
    vec![
        generators::labelled_cycle(c),
        generators::labelled_line(c),
        generators::labelled_star(c),
        generators::labelled_clique(c),
    ]
}

/// One certified decision through the [`Decider`], forced onto the
/// quotient backend so every certificate lives in node space (the form
/// [`VerdictStore`] transports between isomorphic graphs).
fn certified<S: State>(
    m: &Machine<S>,
    g: &Graph,
    schedule: Schedule,
    limit: usize,
) -> CertifiedVerdict<Config<S>> {
    let d = Decider::new(m, g)
        .schedule(schedule)
        .backend(Backend::Quotient)
        .certified(true)
        .limit(limit)
        .decide()
        .unwrap();
    match d.certificate.unwrap() {
        DecisionCertificate::Node(certificate) => CertifiedVerdict {
            verdict: d.verdict,
            certificate,
        },
        other => panic!("quotient backend must emit a node certificate, got {other:?}"),
    }
}

fn counts() -> Vec<LabelCount> {
    [(3u64, 0u64), (2, 1), (1, 2), (2, 2), (3, 1)]
        .into_iter()
        .map(|(a, b)| LabelCount::from_vec(vec![a, b]))
        .collect()
}

/// Runs one witness family over the whole grid: every verdict must match
/// the predicate, every certificate must verify (before and after a JSON
/// round-trip), and the store must serve the suite's repeated isomorphism
/// classes from cache. Returns the number of transported certificates.
fn certified_grid<S: State>(
    machine: &Machine<S>,
    pred: &Predicate,
    name: &str,
    mut decide: impl FnMut(&Graph) -> CertifiedVerdict<Config<S>>,
) -> usize {
    let memo = VerdictStore::new();
    let fp = system_fingerprint(name);
    let mut transports = 0;
    for c in counts() {
        for g in suite(&c) {
            let d = memo.decide_certified(fp, &g, |g| decide(g));
            assert_eq!(
                d.verdict.decided(),
                Some(pred.eval(&c)),
                "{name} on {c}: wrong verdict"
            );
            assert_eq!(d.verdict, d.certificate.verdict());
            // The cached certificate is verified against its *emission*
            // graph (isomorphic to `g`, possibly differently labelled).
            let v = verify_machine(machine, &d.graph, &d.certificate, &VerifyOptions::default())
                .unwrap_or_else(|e| panic!("{name} on {c}: verifier rejected: {e}"));
            assert_eq!(v, d.verdict);
            if d.certificate.has_transport() {
                transports += 1;
            }
            let table = StateTable::from_certificate(&d.certificate);
            let json = certificate_to_json(&d.certificate, &table);
            let back = certificate_from_json(&json, &table)
                .unwrap_or_else(|e| panic!("{name} on {c}: JSON import failed: {e}"));
            assert_eq!(back, *d.certificate, "{name} on {c}: lossy round-trip");
            assert_eq!(
                verify_machine(machine, &d.graph, &back, &VerifyOptions::default()).unwrap(),
                d.verdict
            );
        }
    }
    assert!(
        memo.hits() > 0,
        "{name}: the suite revisits isomorphic graphs, the store must hit"
    );
    transports
}

#[test]
fn daf_presence_grid_is_certified_by_lassos() {
    // dAf ⊇ Cutoff(1): the presence machine under round-robin emits lasso
    // certificates (deterministic replay, no transport by construction).
    let m = cutoff_one_machine(2, |p| p[1]);
    let pred = Predicate::threshold(2, 1, 1);
    certified_grid(&m, &pred, "dAf-presence", |g| {
        certified(&m, g, Schedule::RoundRobin, 500_000)
    });
}

#[test]
fn daf_ladder_grid_is_certified_with_transport() {
    // dAF ⊇ Cutoff: the compiled ⟨level⟩ ladder under pseudo-stochastic
    // fairness. Uniform counts on cliques and cycles have non-trivial
    // complete automorphism groups, so some runs go through the quotient
    // and their certificates must carry (and replay) transport.
    let flat = compile_broadcasts(&threshold_machine(2, 0, 2));
    let pred = Predicate::threshold(2, 0, 2);
    let transports = certified_grid(&flat, &pred, "dAF-ladder", |g| {
        certified(&flat, g, Schedule::PseudoStochastic, 3_000_000)
    });
    assert!(
        transports > 0,
        "the grid must include quotient-active (transported) certificates"
    );
}

#[test]
fn daf_majority_grid_is_certified() {
    // DAF ⊇ NL: population majority, Lemma 4.10-compiled.
    let flat = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    let pred = Predicate::majority();
    certified_grid(&flat, &pred, "DAF-majority", |g| {
        certified(&flat, g, Schedule::PseudoStochastic, 5_000_000)
    });
}

#[test]
fn daf_parity_grid_is_certified() {
    // DAF: parity — the other NL witness outside Cutoff.
    let flat = compile_rendezvous(&modulo_protocol(vec![1, 0], 2, 1));
    let pred = Predicate::modulo(vec![1, 0], 2, 1);
    certified_grid(&flat, &pred, "DAF-parity", |g| {
        certified(&flat, g, Schedule::PseudoStochastic, 5_000_000)
    });
}
