//! Property-based tests (proptest) over the workspace invariants.

use proptest::prelude::*;
use weak_async_models::analysis::Predicate;
use weak_async_models::core::Neighbourhood;
use weak_async_models::graph::{generators, is_covering, lambda_fold_cycle_cover, LabelCount};

proptest! {
    /// Cutoff is idempotent and monotone in K.
    #[test]
    fn cutoff_idempotent_and_monotone(
        counts in prop::collection::vec(0u64..50, 1..5),
        k1 in 1u64..10,
        k2 in 1u64..10,
    ) {
        let l = LabelCount::from_vec(counts);
        let (lo, hi) = (k1.min(k2), k1.max(k2));
        prop_assert_eq!(l.cutoff(lo).cutoff(lo), l.cutoff(lo));
        // Cutting at hi then lo equals cutting at lo.
        prop_assert_eq!(l.cutoff(hi).cutoff(lo), l.cutoff(lo));
        // Pointwise order.
        prop_assert!(l.cutoff(lo).le_pointwise(&l.cutoff(hi)));
        prop_assert!(l.cutoff(hi).le_pointwise(&l));
    }

    /// ⌈λ·L⌉_λ = λ·⌈L⌉₁ — the identity driving Proposition C.3.
    #[test]
    fn scalar_cutoff_identity(
        counts in prop::collection::vec(0u64..20, 1..4),
        lambda in 1u64..8,
    ) {
        let l = LabelCount::from_vec(counts);
        prop_assert_eq!((l.clone() * lambda).cutoff(lambda), l.cutoff(1) * lambda);
    }

    /// Random degree-bounded graphs respect their bound, stay connected,
    /// and preserve the label count.
    #[test]
    fn degree_bounded_generator_invariants(
        a in 1u64..8,
        b in 1u64..8,
        k in 2usize..5,
        extra in 0usize..6,
        seed in 0u64..500,
    ) {
        prop_assume!(a + b >= 3);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::random_degree_bounded(&c, k, extra, seed);
        prop_assert!(g.is_degree_bounded(k));
        prop_assert_eq!(g.label_count(), c);
        prop_assert!(g.bfs_distances(0).iter().all(|&d| d != usize::MAX));
    }

    /// λ-fold cycle covers verify as coverings and multiply label counts.
    #[test]
    fn cycle_covers_verify(
        a in 1u64..5,
        b in 1u64..5,
        lambda in 1usize..5,
    ) {
        prop_assume!(a + b >= 3);
        let base = generators::labelled_cycle(&LabelCount::from_vec(vec![a, b]));
        let (cover, map) = lambda_fold_cycle_cover(&base, lambda);
        prop_assert!(is_covering(&cover, &base, map.as_slice()));
        prop_assert_eq!(cover.label_count(), base.label_count() * lambda as u64);
    }

    /// Neighbourhood projection is clip-exact: projecting a clipped view
    /// equals clipping the projected multiset.
    #[test]
    fn projection_clip_exact(
        pairs in prop::collection::vec((0u8..4, 0u8..3), 0..12),
        beta in 1u32..5,
    ) {
        let n = Neighbourhood::from_states(pairs.iter().copied(), beta);
        let projected = n.project(|&(x, _)| x);
        let direct = Neighbourhood::from_states(pairs.iter().map(|&(x, _)| x), beta);
        for x in 0u8..4 {
            prop_assert_eq!(projected.count(&x), direct.count(&x));
        }
    }

    /// Neighbourhood views are order-independent (functions of the multiset).
    #[test]
    fn neighbourhood_is_multiset_invariant(
        mut states in prop::collection::vec(0u8..5, 0..10),
        beta in 1u32..4,
    ) {
        let n1 = Neighbourhood::from_states(states.iter().copied(), beta);
        states.reverse();
        let n2 = Neighbourhood::from_states(states.iter().copied(), beta);
        prop_assert_eq!(n1, n2);
    }

    /// Linear predicates are monotone in labels with positive coefficients.
    #[test]
    fn linear_predicate_monotonicity(
        a in 0u64..20,
        b in 0u64..20,
        c in 0i64..10,
    ) {
        let p = Predicate::linear(vec![1, 0], c);
        let low = LabelCount::from_vec(vec![a, b]);
        let high = LabelCount::from_vec(vec![a + 1, b]);
        if p.eval(&low) {
            prop_assert!(p.eval(&high));
        }
    }

    /// Modular predicates are invariant under adding the modulus.
    #[test]
    fn modulo_predicate_periodicity(
        a in 0u64..30,
        m in 1u64..7,
        r in 0u64..7,
    ) {
        prop_assume!(r < m);
        let p = Predicate::modulo(vec![1], m, r);
        let x = LabelCount::from_vec(vec![a]);
        let y = LabelCount::from_vec(vec![a + m]);
        prop_assert_eq!(p.eval(&x), p.eval(&y));
    }
}
