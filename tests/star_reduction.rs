//! Symmetry-reduced star deciders vs node-explicit deciders on a heavier
//! machine: the compiled rendez-vous majority automaton. The reduction must
//! be verdict-preserving (leaves are interchangeable), and it must shrink
//! the explored space.

use weak_async_models::analysis::StarSystem;
use weak_async_models::certify::Decider;
use weak_async_models::core::{ExclusiveSystem, Exploration};
use weak_async_models::extensions::{compile_rendezvous, GraphPopulationProtocol, MajorityState};
use weak_async_models::graph::{generators, Label, LabelCount};

#[test]
fn reduced_and_explicit_verdicts_agree_on_majority_machine() {
    let machine = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    for (a_leaves, b_leaves) in [(2u64, 1u64), (1, 2)] {
        // Reduced: centre carries label 0, leaves split a/b.
        let sys = StarSystem::new(
            &machine,
            Label(0),
            vec![(Label(0), a_leaves), (Label(1), b_leaves)],
        );
        let reduced = Exploration::explore(&sys, 3_000_000)
            .map(|e| e.verdict())
            .unwrap();

        // Explicit star with the same label count (centre gets label 0,
        // which labelled_star assigns to the first expanded label).
        let c = LabelCount::from_vec(vec![a_leaves + 1, b_leaves]);
        let g = generators::labelled_star(&c);
        let explicit = Decider::new(&machine, &g)
            .limit(5_000_000)
            .decide()
            .map(|d| d.verdict)
            .unwrap();
        assert_eq!(reduced, explicit, "({a_leaves},{b_leaves})");
        // Majority of label 0: (a_leaves + 1) vs b_leaves.
        assert_eq!(reduced.decided(), Some(a_leaves + 1 > b_leaves));
    }
}

#[test]
fn reduction_shrinks_the_space() {
    let machine = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());
    let sys = StarSystem::new(&machine, Label(0), vec![(Label(0), 2), (Label(1), 1)]);
    let reduced = Exploration::explore(&sys, 3_000_000).unwrap();

    let c = LabelCount::from_vec(vec![3, 1]);
    let g = generators::labelled_star(&c);
    let explicit_sys = ExclusiveSystem::new(&machine, &g);
    let explicit = Exploration::explore(&explicit_sys, 5_000_000).unwrap();

    assert!(
        reduced.len() < explicit.len(),
        "reduced {} vs explicit {}",
        reduced.len(),
        explicit.len()
    );
}
