//! Cross-crate simulation-fidelity tests: every compiler of Section 4
//! (weak broadcasts, weak absence detection, rendez-vous, strong
//! broadcasts) produces a machine whose exact verdict matches the semantic
//! model on a shared input suite.

use std::collections::BTreeSet;
use weak_async_models::certify::Decider;
use weak_async_models::core::{Exploration, Machine, Output};
use weak_async_models::extensions::{
    compile_absence, compile_broadcasts, compile_rendezvous, compile_strong_broadcast,
    threshold_protocol, AbsenceMachine, AbsenceSystem, BroadcastSystem, PopulationSystem,
    StrongBroadcastSystem,
};
use weak_async_models::graph::{generators, Graph, Label, LabelCount};
use weak_async_models::protocols::{modulo_protocol, threshold_machine};

fn small_inputs() -> Vec<(LabelCount, Vec<Graph>)> {
    [(2u64, 1u64), (1, 2), (3, 1), (2, 2)]
        .into_iter()
        .map(|(a, b)| {
            let c = LabelCount::from_vec(vec![a, b]);
            let graphs = vec![
                generators::labelled_cycle(&c),
                generators::labelled_line(&c),
                generators::labelled_star(&c),
            ];
            (c, graphs)
        })
        .collect()
}

#[test]
fn lemma_4_7_broadcast_compilation_fidelity() {
    for (c, graphs) in small_inputs() {
        let bm = threshold_machine(2, 0, 2);
        let flat = compile_broadcasts(&bm);
        for g in graphs {
            let semantic = Exploration::explore(&BroadcastSystem::new(&bm, &g), 1_000_000)
                .map(|e| e.verdict())
                .unwrap();
            let compiled = Decider::new(&flat, &g)
                .limit(3_000_000)
                .decide()
                .map(|d| d.verdict)
                .unwrap();
            assert_eq!(semantic, compiled, "{c} on {g:?}");
        }
    }
}

#[test]
fn lemma_4_9_absence_compilation_fidelity() {
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum D {
        A,
        B,
        Acc,
        Rej,
    }
    let base = Machine::new(
        1,
        |l: Label| if l.0 == 0 { D::A } else { D::B },
        |&s, _| s,
        |&s| match s {
            D::A | D::Acc => Output::Accept,
            D::B | D::Rej => Output::Reject,
        },
    );
    let am = AbsenceMachine::new(
        base,
        |&s| s == D::A,
        |_, supp: &BTreeSet<D>| if supp.contains(&D::B) { D::Rej } else { D::Acc },
    );
    for (c, graphs) in small_inputs() {
        for g in graphs {
            let compiled = compile_absence(&am, g.max_degree());
            let semantic = Exploration::explore(&AbsenceSystem::new(&am, &g), 500_000)
                .map(|e| e.verdict())
                .unwrap();
            let flat = Decider::new(&compiled, &g)
                .limit(1_000_000)
                .decide()
                .map(|d| d.verdict)
                .unwrap();
            assert_eq!(semantic, flat, "{c} on {g:?}");
        }
    }
}

#[test]
fn lemma_4_10_rendezvous_compilation_fidelity() {
    let pp = modulo_protocol(vec![1, 0], 2, 1);
    let flat = compile_rendezvous(&pp);
    for (c, graphs) in small_inputs() {
        for g in graphs {
            let semantic = Exploration::explore(&PopulationSystem::new(&pp, &g), 1_000_000)
                .map(|e| e.verdict())
                .unwrap();
            let compiled = Decider::new(&flat, &g)
                .limit(5_000_000)
                .decide()
                .map(|d| d.verdict)
                .unwrap();
            assert_eq!(semantic, compiled, "{c} on {g:?}");
        }
    }
}

#[test]
fn lemma_5_1_strong_broadcast_compilation_fidelity() {
    // Exact equivalence on the smallest inputs (the stacked state space is
    // deep); larger inputs are covered statistically in the bench suite.
    for (a, b) in [(1u64, 2u64), (0, 3)] {
        let sb = threshold_protocol(1);
        let c = LabelCount::from_vec(vec![a, b]);
        let g = generators::labelled_clique(&c);
        let semantic = Exploration::explore(&StrongBroadcastSystem::new(&sb, &g), 500_000)
            .map(|e| e.verdict())
            .unwrap();
        let compiled = compile_strong_broadcast(&sb);
        let sys = BroadcastSystem::new(&compiled, &g).with_choice_cap(1 << 18);
        let v = Exploration::explore(&sys, 3_000_000)
            .map(|e| e.verdict())
            .unwrap();
        assert_eq!(semantic, v, "({a},{b})");
    }
}

#[test]
fn lemma_4_9_on_tree_families() {
    // The distance labelling must embed a forest correctly on graphs with
    // branching (trees stress the child-label choice more than cycles).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum D {
        A,
        B,
        Acc,
        Rej,
    }
    let base = Machine::new(
        1,
        |l: Label| if l.0 == 0 { D::A } else { D::B },
        |&s, _| s,
        |&s| match s {
            D::A | D::Acc => Output::Accept,
            D::B | D::Rej => Output::Reject,
        },
    );
    let am = AbsenceMachine::new(
        base,
        |&s| s == D::A,
        |_, supp: &BTreeSet<D>| if supp.contains(&D::B) { D::Rej } else { D::Acc },
    );
    for c in [
        LabelCount::from_vec(vec![4, 0]),
        LabelCount::from_vec(vec![3, 1]),
    ] {
        for g in [
            weak_async_models::graph::trees::labelled_binary_tree(&c),
            weak_async_models::graph::trees::labelled_caterpillar(&c),
        ] {
            let compiled = compile_absence(&am, g.max_degree());
            let semantic = Exploration::explore(&AbsenceSystem::new(&am, &g), 500_000)
                .map(|e| e.verdict())
                .unwrap();
            let flat = Decider::new(&compiled, &g)
                .limit(1_000_000)
                .decide()
                .map(|d| d.verdict)
                .unwrap();
            assert_eq!(semantic, flat, "{c} on {g:?}");
        }
    }
}

#[test]
fn compilers_preserve_detection_class() {
    // Lemma 4.7 preserves β (a dAF machine stays non-counting).
    let bm = threshold_machine(2, 0, 3);
    assert!(compile_broadcasts(&bm).is_non_counting());
    // Lemma 4.10 produces a counting machine with β = 2 as in the paper.
    let pp = modulo_protocol(vec![1], 3, 0);
    assert_eq!(compile_rendezvous(&pp).beta(), 2);
}

#[test]
fn response_functions_are_shareable() {
    // BroadcastMachine responses are Arc-shared; cloning machines must not
    // change behaviour.
    let bm = threshold_machine(2, 0, 2);
    let bm2 = bm.clone();
    let s = bm.initial(Label(0));
    let (q, f) = bm.broadcast(&s);
    let (q2, f2) = bm2.broadcast(&s);
    assert_eq!(q, q2);
    assert_eq!(f(&s), f2(&s));
}
