//! The Example 4.6 automaton on a five-node line (Figure 2): weak
//! broadcasts executed atomically, and the same automaton compiled into a
//! three-phase wave of plain neighbourhood transitions.
//!
//! ```sh
//! cargo run --release --example broadcast_wave
//! ```

use std::sync::Arc;
use weak_async_models::core::{Config, Machine, Output, Selection, TransitionSystem};
use weak_async_models::extensions::{
    compile_broadcasts, BroadcastMachine, BroadcastSystem, Phased, ResponseFn,
};
use weak_async_models::graph::{Alphabet, GraphBuilder};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum E {
    A,
    B,
    X,
}

fn main() {
    // States {a, b, x}; neighbourhood transition x → a next to an a;
    // broadcasts a ↦ a, {x ↦ a} and b ↦ b, {b ↦ a, a ↦ x}.
    let machine = Machine::new(
        1,
        |l: weak_async_models::graph::Label| if l.0 == 0 { E::A } else { E::B },
        |&s, n| {
            if s == E::X && n.exists(|&t| t == E::A) {
                E::A
            } else {
                s
            }
        },
        |&s| {
            if s == E::A {
                Output::Accept
            } else {
                Output::Neutral
            }
        },
    );
    let bm = BroadcastMachine::new(
        machine,
        |&s| matches!(s, E::A | E::B),
        |&s| match s {
            E::A => (
                E::A,
                Arc::new(|&r: &E| if r == E::X { E::A } else { r }) as ResponseFn<E>,
            ),
            E::B => (
                E::B,
                Arc::new(|&r: &E| match r {
                    E::B => E::A,
                    E::A => E::X,
                    E::X => E::X,
                }) as ResponseFn<E>,
            ),
            E::X => (E::X, Arc::new(|r: &E| *r) as ResponseFn<E>),
        },
    );

    let ab = Alphabet::new(["a", "b"]);
    let (la, lb) = (ab.label("a").unwrap(), ab.label("b").unwrap());
    let line = GraphBuilder::new(ab)
        .nodes([la, lb, la, lb, la])
        .edge(0, 1)
        .edge(1, 2)
        .edge(2, 3)
        .edge(3, 4)
        .build()
        .expect("five-node line");

    println!("Atomic weak-broadcast successors of a b a b a:");
    let system = BroadcastSystem::new(&bm, &line);
    let initial = system.initial_config();
    for successor in system.broadcast_successors(&initial).into_iter().take(5) {
        println!("  {:?}", successor.states());
    }

    println!("\nCompiled three-phase wave under round-robin (phase in superscript):");
    let compiled = compile_broadcasts(&bm);
    let mut config = Config::initial(&compiled, &line);
    for step in 0..15 {
        let row: Vec<String> = config
            .states()
            .iter()
            .map(|p| match p {
                Phased::Zero(q) => format!("{q:?}"),
                Phased::One(q, _) => format!("{q:?}¹"),
                Phased::Two(q, _) => format!("{q:?}²"),
            })
            .collect();
        println!("  t={step:<3} {}", row.join(" "));
        config = config.successor(&compiled, &line, &Selection::exclusive(step % 5));
    }
}
