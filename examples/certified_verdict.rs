//! Certified verdicts: decide a Lemma 4.10 majority instance, receive a
//! machine-checkable certificate alongside the verdict, round-trip it
//! through the engine-free JSON format, and re-verify the import with the
//! independent checker — the full life cycle of a `wam-certify` proof.
//!
//! ```sh
//! cargo run --release --example certified_verdict
//! ```

use weak_async_models::certify::{
    certificate_from_json, certificate_to_json, verify_machine, Decider, DecisionCertificate,
    StateTable, VerifyOptions,
};
use weak_async_models::core::Backend;
use weak_async_models::extensions::{compile_rendezvous, GraphPopulationProtocol, MajorityState};
use weak_async_models::graph::{generators, LabelCount};

fn main() {
    // 3 nodes labelled `a`, 2 labelled `b` on a cycle: strict majority for
    // `a`. The witness protocol is the 4-state population majority
    // protocol, turned into a plain DAF machine by the Lemma 4.10
    // rendez-vous compilation.
    let count = LabelCount::from_vec(vec![3, 2]);
    let graph = generators::labelled_cycle(&count);
    let machine = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());

    // The certified decider returns the usual exact verdict *plus* a
    // certificate: a concrete path to a stable configuration and the closed
    // invariant that keeps it stable (or an escape structure / lasso for
    // the other verdict kinds). The quotient backend keeps the witness in
    // explicit node space.
    let decision = Decider::new(&machine, &graph)
        .backend(Backend::Quotient)
        .certified(true)
        .limit(5_000_000)
        .decide()
        .expect("space within limit");
    let verdict = decision.verdict;
    let DecisionCertificate::Node(certificate) = decision.certificate.expect("certified run")
    else {
        unreachable!("the quotient backend emits node-space certificates");
    };
    println!("verdict:     {verdict}");
    println!("certificate: {}", certificate.summary());
    println!(
        "backend:     {:?}, {} configurations explored",
        decision.stats.backend, decision.stats.explored
    );

    // Verification is independent of the exploration engine: it replays
    // the recorded steps through the machine semantics and re-checks the
    // invariant's closure — no interned id spaces, no CSR.
    let checked = verify_machine(&machine, &graph, &certificate, &VerifyOptions::default())
        .expect("emitted certificate must verify");
    assert_eq!(checked, verdict);
    println!("verified:    {checked} (independent checker)");

    // Certificates serialise to a self-contained JSON document; the state
    // table maps the machine's opaque states to stable indices.
    let table = StateTable::from_certificate(&certificate);
    let json = certificate_to_json(&certificate, &table);
    println!("exported:    {} bytes of JSON", json.len());

    // ...and import losslessly: the round-tripped certificate is the same
    // object and verifies again.
    let back = certificate_from_json(&json, &table).expect("import");
    assert_eq!(back, certificate, "round-trip must be lossless");
    let again = verify_machine(&machine, &graph, &back, &VerifyOptions::default())
        .expect("re-imported certificate must verify");
    assert_eq!(again, verdict);
    println!("re-verified: {again} (after JSON round-trip)");
}
