//! One predicate, three model families, one driver: the majority predicate
//! `x₊ > x₋` run as a plain machine (the Lemma 4.10 compilation), as a
//! graph population protocol (native rendez-vous), and as a strong-broadcast
//! protocol (the Blondin–Esparza–Jaax conversion) — all through the same
//! generic `run_batch` seed sweep, because all three are `ScheduledSystem`s.
//!
//! ```sh
//! cargo run --release --example any_model_batch
//! ```

use weak_async_models::core::{ExclusiveSystem, StabilityOptions};
use weak_async_models::extensions::{
    compile_rendezvous, GraphPopulationProtocol, MajorityState, PopulationSystem,
    StrongBroadcastSystem,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::strong_broadcast_from_population;
use weak_async_models::sim::{run_batch, BatchConfig, BatchSummary};

fn main() {
    // 5 strong `+` votes against 3 strong `−` votes on a cycle.
    let count = LabelCount::from_vec(vec![5, 3]);
    let graph = generators::labelled_cycle(&count);
    println!(
        "majority x₊ > x₋ on a {}-node cycle (5 vs 3) — expect every run to accept\n",
        graph.node_count()
    );

    let config = BatchConfig {
        runs: 24,
        base_seed: 1,
        stability: StabilityOptions::new(2_000_000, 4_000),
        threads: 0,
    };

    let pp = GraphPopulationProtocol::<MajorityState>::majority();

    let mut rows: Vec<(&str, BatchSummary)> = Vec::new();

    // Family 1: plain machine — the population protocol compiled to
    // neighbourhood transitions via Lemma 4.10, under exclusive selection.
    {
        let machine = compile_rendezvous(&pp);
        let sys = ExclusiveSystem::new(&machine, &graph);
        rows.push(("plain machine (Lemma 4.10)", run_batch(&sys, config)));
    }

    // Family 2: graph population protocol — native rendez-vous steps over
    // the edges of the same graph.
    {
        let sys = PopulationSystem::new(&pp, &graph);
        rows.push(("population protocol", run_batch(&sys, config)));
    }

    // Family 3: strong broadcasts — the same protocol run through the
    // population-to-strong-broadcast conversion.
    {
        let sb = strong_broadcast_from_population(
            &pp,
            vec![
                MajorityState::P,
                MajorityState::M,
                MajorityState::WeakP,
                MajorityState::WeakM,
            ],
        );
        let sys = StrongBroadcastSystem::new(&sb, &graph);
        rows.push(("strong broadcasts (from PP)", run_batch(&sys, config)));
    }

    println!(
        "{:<30} {:>7} {:>7} {:>7} {:>12}",
        "model family", "accept", "reject", "none", "median steps"
    );
    for (name, s) in &rows {
        println!(
            "{:<30} {:>7} {:>7} {:>7} {:>12}",
            name,
            s.accepts,
            s.rejects,
            s.no_consensus,
            s.median_steps()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "—".into()),
        );
    }

    for (name, s) in &rows {
        assert_eq!(
            s.unanimous(),
            Some(weak_async_models::core::Verdict::Accepts),
            "{name} failed to converge on the majority verdict",
        );
    }
    println!("\nall three families agree: majority accepted on every seeded run");
}
