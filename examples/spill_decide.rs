//! Deciding a configuration space that outgrows memory comfort: the
//! presence-pair predicate `x₀ ≥ 1 ∧ x₁ ≥ 1` on a 300-node cycle reaches
//! ~1.7 million ring configurations — over the engine's default 1M
//! interning limit. Raising the limit alone keeps every successor edge
//! resident; setting a **memory budget** additionally spills compact CSR
//! segments to a temp file, so the edge relation's resident footprint
//! stays near the budget while the verdict comes out identical (fixpoints
//! run as streaming forward passes over the spilled stream).
//!
//! ```sh
//! cargo run --release --example spill_decide
//! ```

use std::time::Instant;
use weak_async_models::core::{Exploration, ExploreOptions, RingSystem, TransitionSystem, Verdict};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::cutoff_one_machine;

fn main() {
    let machine = cutoff_one_machine(2, |p| p[0] && p[1]);
    let graph = generators::labelled_cycle(&LabelCount::from_vec(vec![150, 150]));
    let ring = RingSystem::new(&machine, &graph).expect("cycles compress to rings");

    // At the default limit the space is refused outright.
    let refused = Exploration::explore_with(
        &ring,
        ring.initial_config(),
        ExploreOptions::with_limit(1_000_000),
    );
    println!("default limit: {}", refused.expect_err("too large"));

    // With a raised limit and a 2 MiB edge budget, the same space decides
    // out of core: edges are delta/varint-encoded and flushed to disk in
    // segments, and `Pre*` streams them back chunk by chunk.
    let t0 = Instant::now();
    let e = Exploration::explore_with(
        &ring,
        ring.initial_config(),
        ExploreOptions::with_limit(2_000_000).memory_budget(2 << 20),
    )
    .expect("fits the raised limit");
    let verdict = e.verdict();
    println!(
        "budgeted run: {} configurations, {} edges, {:.1} MiB spilled, \
         verdict '{}' in {:.1}s",
        e.len(),
        e.edge_count(),
        e.spilled_bytes() as f64 / (1 << 20) as f64,
        verdict,
        t0.elapsed().as_secs_f64(),
    );
    assert!(e.was_spilled(), "the budget must actually spill");
    assert_eq!(verdict, Verdict::Accepts, "both labels are present");
}
