//! The certified-verdict service used in-process (DESIGN.md §3a.6):
//! build a [`VerdictService`] over the Figure-1 catalog, fire a burst of
//! concurrent identical requests (they coalesce onto one decision), hit
//! the warm cache, degrade an out-of-time certified request, and print
//! the service counters. The `wam-serve` binary wraps the same service
//! behind line-JSON stdin/stdout.

use executor::block_on;
use weak_async_models::serve::{CacheOutcome, DecideRequest, Reply, ServiceConfig, VerdictService};

fn req(machine: &str, counts: &[u64], certified: bool) -> DecideRequest {
    DecideRequest {
        id: None,
        machine: machine.to_string(),
        family: "cycle".to_string(),
        counts: counts.to_vec(),
        certified,
        deadline_ms: None,
    }
}

fn main() {
    let service = VerdictService::with_paper_catalog(ServiceConfig::default());
    let handle = service.handle();

    println!("== burst: 8 concurrent identical majority requests ==");
    let burst: Vec<_> = (0..8)
        .map(|_| handle.submit(req("majority", &[3, 2], true)))
        .collect();
    for h in burst {
        match block_on(h) {
            Reply::Ok(ok) => println!(
                "  {} via {} ({} explored, cache: {}, certificate: {})",
                ok.result.verdict,
                ok.result.backend,
                ok.result.explored,
                ok.cache.as_str(),
                ok.result.certificate.as_ref().map_or("none", |c| c.kind),
            ),
            other => panic!("burst request failed: {other:?}"),
        }
    }

    println!("\n== warm hit: the burst's key again, after it completed ==");
    match block_on(handle.submit(req("majority", &[3, 2], true))) {
        Reply::Ok(ok) => {
            assert_eq!(ok.cache, CacheOutcome::Hit);
            println!(
                "  cycle[3,2]: {} (cache: {})",
                ok.result.verdict,
                ok.cache.as_str()
            );
        }
        other => panic!("{other:?}"),
    }

    println!("\n== deadline degrade: certified parity with 0 ms budget ==");
    // Warm the plain cache first, then ask for a certificate with no time.
    let plain = block_on(handle.submit(req("parity", &[2, 1], false)));
    assert!(matches!(plain, Reply::Ok(_)));
    let mut hopeless = req("parity", &[2, 1], true);
    hopeless.deadline_ms = Some(0);
    match block_on(handle.submit(hopeless)) {
        Reply::Ok(ok) => {
            assert!(ok.degraded);
            assert_eq!(ok.cache, CacheOutcome::Hit);
            println!(
                "  {} served from the plain cache (degraded: {})",
                ok.result.verdict, ok.degraded
            );
        }
        other => panic!("degrade must not reject: {other:?}"),
    }

    let stats = service.stats();
    println!(
        "\nstats: {} received, {} hits, {} coalesced, {} decided, {} degraded",
        stats.received, stats.cache_hits, stats.coalesced, stats.decided, stats.degraded
    );
    assert_eq!(
        stats.decided as usize,
        service.store().len(),
        "every decision is cached exactly once"
    );
}
