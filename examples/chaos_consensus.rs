//! Chaos consensus smoke: the Lemma 4.10-compiled majority protocol runs
//! as six real communicating nodes on a ring, over a network that drops,
//! duplicates, and reorders — and the verdict that *emerges* from the
//! message chaos must equal what the exact decider computes on the
//! fault-free semantics.
//!
//! The run is seeded: the discrete-event router derives every delay,
//! drop, and duplication from one RNG, so the printed trace digest
//! replays bit-identically. CI runs this example as the network smoke
//! gate and the asserts are the gate's teeth.
//!
//! ```text
//! cargo run --release --example chaos_consensus
//! ```

use wam_core::{ExploreOptions, Verdict};
use wam_extensions::{compile_rendezvous, GraphPopulationProtocol, MajorityState};
use wam_graph::{generators, LabelCount};
use wam_net::{cross_validate, run_chaos, ChaosOptions, FaultPlan};

fn main() {
    // Six nodes on a ring, four labelled 0 and two labelled 1: majority
    // holds (#0 > #1), so fault-free semantics accept.
    let graph = generators::labelled_cycle(&LabelCount::from_vec(vec![4, 2]));
    let machine = compile_rendezvous(&GraphPopulationProtocol::<MajorityState>::majority());

    // 15% loss, 10% duplication, 1–4 tick jitter: plenty of chaos, yet
    // fairness-preserving — retransmission eventually wins every link.
    let plan = FaultPlan::chaotic((1, 4), 0.15, 0.10);
    assert!(plan.preserves_fairness());

    let seed = 2026;
    let opts = ChaosOptions::budget(80_000, 600);
    let cv = cross_validate(
        &machine,
        &graph,
        &plan,
        seed,
        &opts,
        ExploreOptions::with_limit(20_000_000),
    )
    .expect("the exact decision fits the limit");

    println!("machine      majority (Lemma 4.10 rendezvous compilation)");
    println!("graph        6-node ring, labels [4, 2]");
    println!("faults       {}", plan.summary());
    println!("seed         {seed}");
    println!("exact        {}", cv.expected);
    println!("emergent     {}", cv.outcome.verdict);
    println!(
        "stabilised   after {} activations ({} budget)",
        cv.outcome
            .stabilised_at
            .map_or("—".to_string(), |r| r.to_string()),
        opts.max_rounds,
    );
    let s = cv.outcome.stats;
    println!(
        "traffic      {} delivered, {} dropped, {} duplicated, {} starved rounds",
        s.delivered,
        s.dropped_random + s.dropped_blocked,
        s.duplicated,
        s.starved,
    );
    println!("digest       {:016x}", cv.outcome.digest);

    assert_eq!(cv.expected, Verdict::Accepts, "majority holds on [4, 2]");
    assert!(
        cv.agrees(),
        "fairness-preserving chaos must agree with the exact decider: {}",
        cv.divergence.unwrap()
    );
    assert!(s.dropped_random > 0, "the drop knob must have fired");
    assert!(s.duplicated > 0, "the duplication knob must have fired");

    // Replay: the same seed must walk the identical trajectory.
    let replay = run_chaos(&machine, &graph, &plan, seed, &opts);
    assert_eq!(
        replay.digest, cv.outcome.digest,
        "same seed, same trace digest"
    );
    println!("replay       digest matches — run is reproducible from the seed");
}
