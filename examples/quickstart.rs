//! Quickstart: build the paper's headline algorithm — the §6.1 DAf
//! majority automaton for bounded-degree networks — and run it on a random
//! degree-≤3 graph under an adversarial (round-robin) scheduler.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use weak_async_models::core::{run_machine_until_stable, RoundRobinScheduler, StabilityOptions};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::majority_stack;

fn main() {
    // 7 nodes labelled `a`, 5 labelled `b`: is a in the (weak) majority?
    let count = LabelCount::from_vec(vec![7, 5]);
    let graph = generators::random_degree_bounded(&count, 3, 4, 42);
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // The full §6.1 stack: local cancellation, leader convergence detection
    // via weak absence detection, doubling broadcasts, error-driven resets —
    // compiled down to a plain machine with only neighbourhood transitions.
    let stack = majority_stack(3);
    let machine = stack.flat();
    println!(
        "protocol: homogeneous threshold x_a − x_b ≥ 0, E = {}, degree bound {}",
        stack.e, stack.degree_bound
    );

    // Round-robin is a *fair adversarial* schedule: no randomness helps the
    // protocol here. That majority is still decided is the paper's point.
    let mut scheduler = RoundRobinScheduler;
    let report = run_machine_until_stable(
        &machine,
        &graph,
        &mut scheduler,
        StabilityOptions::new(10_000_000, 10_000),
    );

    println!(
        "verdict: {} after {} steps (stable since step {:?})",
        report.verdict, report.steps, report.stabilised_at
    );
    assert!(report.verdict.is_accepting(), "7 ≥ 5 should accept");
}
