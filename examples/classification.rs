//! Regenerate the Figure 1 classification on the terminal, with live
//! verdicts from witness protocols for the decidable cells.
//!
//! ```sh
//! cargo run --release --example classification
//! ```

use weak_async_models::analysis::{classify, Predicate};
use weak_async_models::certify::Decider;
use weak_async_models::core::ModelClass;
use weak_async_models::extensions::{compile_rendezvous, GraphPopulationProtocol, MajorityState};
use weak_async_models::graph::{generators, LabelCount};

fn main() {
    println!("The seven classes and their decision power (Figure 1):\n");
    println!(
        "{:<6} {:<22} {:<22} majority?",
        "class", "arbitrary graphs", "bounded degree"
    );
    for class in ModelClass::representatives() {
        println!(
            "{:<6} {:<22} {:<22} arbitrary: {:<3} bounded: {}",
            class.to_string(),
            class.labelling_power_arbitrary().to_string(),
            class.labelling_power_bounded_degree().to_string(),
            if class.decides_majority_arbitrary() {
                "yes"
            } else {
                "no"
            },
            if class.decides_majority_bounded_degree() {
                "yes"
            } else {
                "no"
            },
        );
    }

    println!("\nPredicate classification over the box {{0..12}}²:");
    for (name, p) in [
        ("x₀ ≥ 1", Predicate::threshold(2, 0, 1)),
        ("x₀ ≥ 3", Predicate::threshold(2, 0, 3)),
        ("majority", Predicate::majority()),
        ("x₀ even", Predicate::modulo(vec![1, 0], 2, 0)),
    ] {
        println!("  {name:<10} → {}", classify(&p, 12));
    }

    println!("\nLive witness: DAF decides majority exactly on every small graph shape.");
    let pp = GraphPopulationProtocol::<MajorityState>::majority();
    let machine = compile_rendezvous(&pp);
    for (a, b) in [(3u64, 1u64), (2, 2), (1, 3)] {
        let count = LabelCount::from_vec(vec![a, b]);
        let graph = generators::labelled_cycle(&count);
        let verdict = Decider::new(&machine, &graph)
            .limit(3_000_000)
            .decide()
            .map(|d| d.verdict)
            .expect("small cycle fits the exact decider");
        println!(
            "  majority({a},{b}) on a cycle: {verdict} (truth: {})",
            a > b
        );
    }
}
