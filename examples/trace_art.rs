//! Visualise a run: record a trace of the flooding machine on a line and
//! render the per-node output evolution as ASCII art.
//!
//! ```sh
//! cargo run --release --example trace_art
//! ```

use weak_async_models::core::RoundRobinScheduler;
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::exists_label;
use weak_async_models::sim::record_machine_trace;

fn main() {
    // A 12-node line with the witness label at one end: watch acceptance
    // flood across under round-robin scheduling.
    let count = LabelCount::from_vec(vec![11, 1]);
    let graph = generators::labelled_line(&count);
    let machine = exists_label(2, 1);
    let mut scheduler = RoundRobinScheduler;
    let trace = record_machine_trace(&machine, &graph, &mut scheduler, 150);
    println!("█ = accepting, · = rejecting; one column per node\n");
    println!("{}", trace.render_ascii(6));
    if let Some(t) = trace.stabilisation_point() {
        println!("stabilised at step {t}");
    }
}
