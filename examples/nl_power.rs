//! The DAF = NL direction made executable (Lemma 5.1): strong broadcast
//! protocols compiled into DAF-automata through the token / ⟨step⟩ /
//! ⟨reset⟩ layering, deciding thresholds and — via the population-protocol
//! conversion — majority, on arbitrary communication graphs.
//!
//! ```sh
//! cargo run --release --example nl_power
//! ```

use weak_async_models::core::{
    run_machine_until_stable, Exploration, RandomScheduler, StabilityOptions,
};
use weak_async_models::extensions::{
    compile_broadcasts, compile_strong_broadcast, threshold_protocol, GraphPopulationProtocol,
    MajorityState, StrongBroadcastSystem,
};
use weak_async_models::graph::{generators, LabelCount};
use weak_async_models::protocols::strong_broadcast_from_population;

fn main() {
    // 1. A strong broadcast protocol for x₀ ≥ 2, compiled to a *plain* DAF
    //    automaton (rendez-vous token gadget + two weak-broadcast
    //    compilations), run statistically on a cycle.
    println!("Lemma 5.1: threshold x₀ ≥ 2 through the full token/step/reset stack");
    for (a, b) in [(3u64, 2u64), (1, 4)] {
        let protocol = threshold_protocol(2);
        let flat = compile_broadcasts(&compile_strong_broadcast(&protocol));
        let count = LabelCount::from_vec(vec![a, b]);
        let graph = generators::labelled_cycle(&count);
        let mut scheduler = RandomScheduler::exclusive(7);
        let report = run_machine_until_stable(
            &flat,
            &graph,
            &mut scheduler,
            StabilityOptions::new(800_000, 4_000),
        );
        println!(
            "  ({a},{b}) → {} after {} steps (truth: {})",
            report.verdict,
            report.steps,
            a >= 2
        );
        assert_eq!(report.verdict.decided(), Some(a >= 2));
    }

    // 2. Majority through the population-protocol conversion: rendez-vous
    //    transitions become request/claim broadcast pairs, giving a strong
    //    broadcast protocol whose *exact* verdicts match majority.
    println!("\nPP → strong broadcast: majority as an NL witness (exact verdicts)");
    let pp = GraphPopulationProtocol::<MajorityState>::majority();
    let universe = vec![
        MajorityState::P,
        MajorityState::M,
        MajorityState::WeakP,
        MajorityState::WeakM,
    ];
    let strong = strong_broadcast_from_population(&pp, universe);
    for (a, b) in [(2u64, 1u64), (1, 2), (2, 2)] {
        let count = LabelCount::from_vec(vec![a, b]);
        let graph = generators::labelled_clique(&count);
        let verdict = Exploration::explore(&StrongBroadcastSystem::new(&strong, &graph), 3_000_000)
            .map(|e| e.verdict())
            .expect("exact exploration fits");
        println!("  majority({a},{b}) → {verdict} (truth: {})", a > b);
        assert_eq!(verdict.decided(), Some(a > b));
    }
    println!("\nBoth routes land in DAF: counting + stable consensus + pseudo-stochastic");
    println!("fairness buy exactly the labelling properties in NL (Figure 1, middle).");
}
