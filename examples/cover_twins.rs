//! Lemma 3.2 visualised: a labelled cycle and its 3-fold cover run in
//! perfect lockstep under synchronous selection, so no automaton with
//! adversarial selection can tell them apart — even though one satisfies
//! `x₀ ≥ 2` and the other does not.
//!
//! ```sh
//! cargo run --release --example cover_twins
//! ```

use weak_async_models::certify::Decider;
use weak_async_models::core::{Config, Schedule, Selection};
use weak_async_models::extensions::compile_broadcasts;
use weak_async_models::graph::{generators, lambda_fold_cycle_cover, LabelCount};
use weak_async_models::protocols::threshold_machine;

fn main() {
    let base = generators::labelled_cycle(&LabelCount::from_vec(vec![1, 2]));
    let (cover, map) = lambda_fold_cycle_cover(&base, 3);
    println!(
        "base:  {} nodes, label count {} (x₀ ≥ 2 is FALSE)",
        base.node_count(),
        base.label_count()
    );
    println!(
        "cover: {} nodes, label count {} (x₀ ≥ 2 is TRUE)",
        cover.node_count(),
        cover.label_count()
    );

    let machine = compile_broadcasts(&threshold_machine(2, 0, 2));

    // Lockstep: every fibre node mirrors its base node, step for step.
    let mut base_config = Config::initial(&machine, &base);
    let mut cover_config = Config::initial(&machine, &cover);
    let all_base = Selection::all(&base);
    let all_cover = Selection::all(&cover);
    for step in 0..100 {
        for v in cover.nodes() {
            assert_eq!(
                cover_config.state(v),
                base_config.state(map.image(v)),
                "lockstep broke at step {step}, node {v}"
            );
        }
        base_config = base_config.successor(&machine, &base, &all_base);
        cover_config = cover_config.successor(&machine, &cover, &all_cover);
    }
    println!("lockstep held for 100 synchronous steps: every fibre mirrors its base node.");

    let vb = Decider::new(&machine, &base)
        .schedule(Schedule::Synchronous)
        .limit(1_000_000)
        .decide()
        .map(|d| d.verdict)
        .expect("lasso");
    let vc = Decider::new(&machine, &cover)
        .schedule(Schedule::Synchronous)
        .limit(1_000_000)
        .decide()
        .map(|d| d.verdict)
        .expect("lasso");
    println!("synchronous verdict on base:  {vb}");
    println!("synchronous verdict on cover: {vc}");
    assert_eq!(vb, vc);
    println!(
        "\nSame verdict despite different truth values: adversarial-selection classes\n\
         are blind to coverings (Lemma 3.2), hence invariant under scalar\n\
         multiplication of the label count (Corollary 3.3)."
    );
}
